//! Disk abstraction: real files or an in-memory image.
//!
//! Both implementations expose the same random-access API, so the whole
//! stack (block fetch → buffer pool → operators) exercises one code path.
//! The in-memory disk is the laptop-scale stand-in for the paper's 2006
//! spinning disk: actual transfer time is negligible either way once the
//! OS page cache is warm, and the *cost* of cold I/O is accounted
//! separately by the [`IoMeter`](crate::meter::IoMeter).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use matstrat_common::{Error, Result};
use parking_lot::Mutex;

/// Random-access storage for column files, keyed by file name.
pub trait Disk: Send + Sync {
    /// Create (or truncate) a file.
    fn create(&self, name: &str) -> Result<()>;

    /// Write `data` at `offset`, extending the file as needed.
    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<()>;

    /// Read exactly `len` bytes at `offset`.
    fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>>;

    /// Current length of the file in bytes.
    fn len(&self, name: &str) -> Result<u64>;

    /// Whether the file exists.
    fn exists(&self, name: &str) -> bool;

    /// List all file names (unordered).
    fn list(&self) -> Vec<String>;

    /// Durability barrier: flush `name` so everything written so far
    /// survives a crash. The write-ahead log batches appends behind a
    /// single `sync` per group commit. Default is a no-op — correct for
    /// [`MemDisk`] (a crash loses the process and the "disk" with it);
    /// [`FileDisk`] overrides with a real fsync.
    fn sync(&self, _name: &str) -> Result<()> {
        Ok(())
    }
}

/// An in-memory disk image: `HashMap<name, Vec<u8>>` behind a mutex.
#[derive(Debug, Default)]
pub struct MemDisk {
    files: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemDisk {
    /// Empty in-memory disk.
    pub fn new() -> MemDisk {
        MemDisk::default()
    }
}

impl Disk for MemDisk {
    fn create(&self, name: &str) -> Result<()> {
        self.files.lock().insert(name.to_string(), Vec::new());
        Ok(())
    }

    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<()> {
        let mut files = self.files.lock();
        let f = files
            .get_mut(name)
            .ok_or_else(|| Error::not_found(format!("file {name}")))?;
        let end = offset as usize + data.len();
        if f.len() < end {
            f.resize(end, 0);
        }
        f[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let files = self.files.lock();
        let f = files
            .get(name)
            .ok_or_else(|| Error::not_found(format!("file {name}")))?;
        let end = offset as usize + len;
        if f.len() < end {
            return Err(Error::corrupt(format!(
                "short read: {name} has {} bytes, wanted [{offset}, {end})",
                f.len()
            )));
        }
        Ok(f[offset as usize..end].to_vec())
    }

    fn len(&self, name: &str) -> Result<u64> {
        let files = self.files.lock();
        files
            .get(name)
            .map(|f| f.len() as u64)
            .ok_or_else(|| Error::not_found(format!("file {name}")))
    }

    fn exists(&self, name: &str) -> bool {
        self.files.lock().contains_key(name)
    }

    fn list(&self) -> Vec<String> {
        self.files.lock().keys().cloned().collect()
    }
}

/// A directory of real files on the local file system.
#[derive(Debug)]
pub struct FileDisk {
    dir: PathBuf,
}

impl FileDisk {
    /// Open (creating if necessary) a directory as a disk.
    pub fn open(dir: impl AsRef<Path>) -> Result<FileDisk> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(FileDisk { dir })
    }

    fn path(&self, name: &str) -> PathBuf {
        // Column names are catalog-generated (`t{t}_c{c}.col`), never raw
        // user input, but reject separators defensively.
        assert!(
            !name.contains('/') && !name.contains('\\'),
            "file name must not contain path separators"
        );
        self.dir.join(name)
    }
}

impl Disk for FileDisk {
    fn create(&self, name: &str) -> Result<()> {
        File::create(self.path(name))?;
        Ok(())
    }

    fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> Result<()> {
        let mut f = OpenOptions::new().write(true).open(self.path(name))?;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)?;
        Ok(())
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut f = File::open(self.path(name))?;
        f.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn len(&self, name: &str) -> Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn list(&self) -> Vec<String> {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default()
    }

    fn sync(&self, name: &str) -> Result<()> {
        File::open(self.path(name))?.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        disk.create("a.col").unwrap();
        assert!(disk.exists("a.col"));
        assert!(!disk.exists("b.col"));
        disk.write_at("a.col", 0, b"hello").unwrap();
        disk.write_at("a.col", 10, b"world").unwrap();
        assert_eq!(disk.len("a.col").unwrap(), 15);
        assert_eq!(disk.read_at("a.col", 0, 5).unwrap(), b"hello");
        assert_eq!(disk.read_at("a.col", 10, 5).unwrap(), b"world");
        // Gap is zero-filled.
        assert_eq!(disk.read_at("a.col", 5, 5).unwrap(), vec![0u8; 5]);
        // Reading past EOF fails.
        assert!(disk.read_at("a.col", 12, 10).is_err());
        // Missing file fails.
        assert!(disk.read_at("nope", 0, 1).is_err());
        assert!(disk.len("nope").is_err());
        assert!(disk.list().contains(&"a.col".to_string()));
    }

    #[test]
    fn memdisk_contract() {
        exercise(&MemDisk::new());
    }

    #[test]
    fn filedisk_contract() {
        let dir = std::env::temp_dir().join(format!("matstrat-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&FileDisk::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memdisk_create_truncates() {
        let d = MemDisk::new();
        d.create("f").unwrap();
        d.write_at("f", 0, b"data").unwrap();
        d.create("f").unwrap();
        assert_eq!(d.len("f").unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "path separators")]
    fn filedisk_rejects_separators() {
        let dir = std::env::temp_dir().join(format!("matstrat-disk-sep-{}", std::process::id()));
        let d = FileDisk::open(&dir).unwrap();
        let _ = d.exists("../evil");
    }
}
