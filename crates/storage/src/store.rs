//! The storage facade: disk + buffer pool + I/O meter + catalog.
//!
//! A [`Store`] owns everything below the query executor. Loading a
//! projection writes one file per column; reading goes through
//! [`ColumnReader`], which pulls blocks through the buffer pool and
//! charges the I/O meter on misses.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use matstrat_common::{Error, Pos, Result, TableId, Value, Width};
use parking_lot::RwLock;

use crate::block::EncodedBlock;
use crate::catalog::{verify_sort_order, Catalog, ColumnInfo, ProjectionInfo, ProjectionSpec};
use crate::disk::{Disk, FileDisk, MemDisk};
use crate::encoding::EncodingKind;
use crate::file::{BlockIndexEntry, ColumnFileReader, ColumnFileWriter};
use crate::meter::IoMeter;
use crate::pool::BufferPool;

/// Default buffer pool capacity: 16 Ki blocks ≈ 1 GB.
pub const DEFAULT_POOL_BLOCKS: usize = 16 * 1024;

const CATALOG_FILE: &str = "catalog.msc";

struct StoreInner {
    disk: Arc<dyn Disk>,
    pool: BufferPool,
    meter: IoMeter,
    catalog: RwLock<Catalog>,
    readers: RwLock<HashMap<String, Arc<ColumnFileReader>>>,
    persistent: bool,
}

/// Cheap-to-clone handle to the storage engine.
#[derive(Clone)]
pub struct Store {
    inner: Arc<StoreInner>,
}

impl Store {
    /// A store backed by an in-memory disk image.
    pub fn in_memory() -> Store {
        Store::with_disk(Arc::new(MemDisk::new()), DEFAULT_POOL_BLOCKS, false)
    }

    /// A store backed by an in-memory disk with a custom pool capacity
    /// (in blocks) — the knob for cold/warm-cache experiments.
    pub fn in_memory_with_pool(pool_blocks: usize) -> Store {
        Store::with_disk(Arc::new(MemDisk::new()), pool_blocks, false)
    }

    /// A store backed by real files under `dir`; reloads the catalog if
    /// one was persisted there.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Store> {
        let disk = Arc::new(FileDisk::open(dir)?);
        let store = Store::with_disk(disk, DEFAULT_POOL_BLOCKS, true);
        store.reload_catalog()?;
        Ok(store)
    }

    /// A store over any [`Disk`] implementation.
    pub fn with_disk(disk: Arc<dyn Disk>, pool_blocks: usize, persistent: bool) -> Store {
        Store {
            inner: Arc::new(StoreInner {
                disk,
                pool: BufferPool::new(pool_blocks),
                meter: IoMeter::new(),
                catalog: RwLock::new(Catalog::new()),
                readers: RwLock::new(HashMap::new()),
                persistent,
            }),
        }
    }

    fn reload_catalog(&self) -> Result<()> {
        if self.inner.disk.exists(CATALOG_FILE) {
            let len = self.inner.disk.len(CATALOG_FILE)?;
            let bytes = self.inner.disk.read_at(CATALOG_FILE, 0, len as usize)?;
            *self.inner.catalog.write() = Catalog::parse(&bytes)?;
        }
        Ok(())
    }

    fn persist_catalog(&self) -> Result<()> {
        if self.inner.persistent {
            let bytes = self.inner.catalog.read().serialize();
            self.inner.disk.create(CATALOG_FILE)?;
            self.inner.disk.write_at(CATALOG_FILE, 0, &bytes)?;
        }
        Ok(())
    }

    /// Load a projection: one column file per spec column.
    ///
    /// Validates that all columns have equal length and that the declared
    /// sort key actually orders the data lexicographically. The packed
    /// width for `Plain` columns is chosen from the observed min/max.
    ///
    /// Columns are independent — each writes its own file — so encoding
    /// runs column-parallel on up to `MATSTRAT_THREADS` scoped workers
    /// (the executor's worker-pool pattern). The produced files, stats,
    /// and catalog entry are identical at any worker count; only wall
    /// time changes.
    pub fn load_projection(&self, spec: &ProjectionSpec, columns: &[&[Value]]) -> Result<TableId> {
        self.load_projection_with_workers(spec, columns, matstrat_common::default_parallelism())
    }

    /// [`load_projection`](Self::load_projection) with an explicit worker
    /// count (clamped to `[1, columns]`).
    pub fn load_projection_with_workers(
        &self,
        spec: &ProjectionSpec,
        columns: &[&[Value]],
        workers: usize,
    ) -> Result<TableId> {
        if spec.columns.len() != columns.len() {
            return Err(Error::invalid(format!(
                "spec has {} columns, data has {}",
                spec.columns.len(),
                columns.len()
            )));
        }
        let num_rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != num_rows) {
            return Err(Error::invalid("all columns must have equal length"));
        }
        let sort_cols: Vec<&[Value]> = spec.sort_key().iter().map(|&i| columns[i]).collect();
        verify_sort_order(&sort_cols)?;

        // Reserve the table id up front so file names are stable.
        let table_idx = self.inner.catalog.read().projections().len() as u32;
        let encode_one = |ci: usize| -> Result<ColumnInfo> {
            let cspec = &spec.columns[ci];
            let data = columns[ci];
            let (min, max) = data.iter().fold((Value::MAX, Value::MIN), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
            let width = if data.is_empty() {
                Width::W8
            } else {
                Width::fitting(min, max)
            };
            let file = format!("t{table_idx}_c{ci}_{}.col", cspec.name);
            let mut w =
                ColumnFileWriter::create(self.inner.disk.as_ref(), &file, cspec.encoding, width)?;
            w.push_all(data)?;
            let stats = w.finish()?;
            Ok(ColumnInfo {
                id: matstrat_common::ColumnId(0), // assigned by the catalog
                name: cspec.name.clone(),
                encoding: cspec.encoding,
                width,
                sort: cspec.sort,
                stats,
                file,
            })
        };
        // Scoped workers claim column indices from a shared counter
        // (columns vary wildly in encoding cost, so striding would
        // skew); results are reordered by index afterwards, so the
        // catalog entry is identical to a serial load. Encoding only
        // *writes* — there is no per-thread meter state to clean up.
        let infos: Vec<ColumnInfo> =
            matstrat_common::par_map_indexed(spec.columns.len(), workers, encode_one, || {})?;
        let id = self
            .inner
            .catalog
            .write()
            .add_projection(&spec.name, num_rows as u64, infos)?;
        self.persist_catalog()?;
        Ok(id)
    }

    /// Projection metadata by id.
    pub fn projection(&self, id: TableId) -> Result<ProjectionInfo> {
        Ok(self.inner.catalog.read().projection(id)?.clone())
    }

    /// Projection metadata by name.
    pub fn projection_by_name(&self, name: &str) -> Result<ProjectionInfo> {
        Ok(self.inner.catalog.read().projection_by_name(name)?.clone())
    }

    /// Names of all loaded projections.
    pub fn projection_names(&self) -> Vec<String> {
        self.inner
            .catalog
            .read()
            .projections()
            .iter()
            .map(|p| p.name.clone())
            .collect()
    }

    /// Open a reader for column `col_idx` of projection `table`.
    pub fn reader(&self, table: TableId, col_idx: usize) -> Result<ColumnReader> {
        let info = {
            let cat = self.inner.catalog.read();
            cat.projection(table)?.column(col_idx)?.clone()
        };
        let file = self.open_file(&info.file)?;
        Ok(ColumnReader {
            store: self.inner.clone(),
            info,
            file,
        })
    }

    fn open_file(&self, name: &str) -> Result<Arc<ColumnFileReader>> {
        if let Some(f) = self.inner.readers.read().get(name) {
            return Ok(Arc::clone(f));
        }
        let f = Arc::new(ColumnFileReader::open(self.inner.disk.as_ref(), name)?);
        self.inner
            .readers
            .write()
            .insert(name.to_string(), Arc::clone(&f));
        Ok(f)
    }

    /// The buffer pool (for stats and cold-cache resets).
    pub fn pool(&self) -> &BufferPool {
        &self.inner.pool
    }

    /// The simulated-disk meter.
    pub fn meter(&self) -> &IoMeter {
        &self.inner.meter
    }

    /// Drop every cached block and reset I/O accounting — a cold start.
    pub fn cold_reset(&self) {
        self.inner.pool.clear();
        self.inner.meter.reset();
    }
}

/// Read access to one column: blocks come through the buffer pool.
#[derive(Clone)]
pub struct ColumnReader {
    store: Arc<StoreInner>,
    info: ColumnInfo,
    file: Arc<ColumnFileReader>,
}

impl ColumnReader {
    /// Catalog metadata for the column.
    pub fn info(&self) -> &ColumnInfo {
        &self.info
    }

    /// Physical encoding.
    pub fn encoding(&self) -> EncodingKind {
        self.info.encoding
    }

    /// Total rows (`||C||`).
    pub fn num_rows(&self) -> u64 {
        self.info.stats.num_rows
    }

    /// Total blocks (`|C|`).
    pub fn num_blocks(&self) -> usize {
        self.file.num_blocks()
    }

    /// Index entry (start position, row count) for block `idx` — no I/O.
    pub fn block_meta(&self, idx: usize) -> Result<BlockIndexEntry> {
        self.file
            .index()
            .get(idx)
            .copied()
            .ok_or_else(|| Error::invalid(format!("block {idx} out of range")))
    }

    /// Index of the block containing position `pos` — no I/O.
    pub fn block_for_pos(&self, pos: Pos) -> Result<usize> {
        self.file.block_for_pos(pos)
    }

    /// Fetch block `idx` through the buffer pool; a miss reads from disk
    /// and charges the I/O meter. Concurrent misses on one block are
    /// single-flighted by the pool, so parallel cold runs read and count
    /// each block exactly once, like a serial run.
    pub fn block(&self, idx: usize) -> Result<Arc<EncodedBlock>> {
        let key = (self.info.file.clone(), idx as u32);
        let meta = self.block_meta(idx)?;
        self.store.pool.get_or_insert_with(&key, || {
            self.store
                .meter
                .record_read(&self.info.file, meta.offset, meta.len as u64);
            Ok(Arc::new(
                self.file.fetch_block(self.store.disk.as_ref(), idx)?,
            ))
        })
    }

    /// Fraction of this column's blocks currently resident in the pool —
    /// the model's `F`.
    pub fn resident_fraction(&self) -> f64 {
        let total = self.num_blocks();
        if total == 0 {
            return 1.0;
        }
        self.store.pool.resident_blocks(&self.info.file) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SortOrder;
    use matstrat_common::Predicate;

    fn demo_spec() -> ProjectionSpec {
        ProjectionSpec::new("demo")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", EncodingKind::Plain, SortOrder::None)
    }

    fn demo_data() -> (Vec<Value>, Vec<Value>) {
        let a: Vec<Value> = (0..1000).map(|i| i / 100).collect();
        let b: Vec<Value> = (0..1000).map(|i| (i * 7) % 13).collect();
        (a, b)
    }

    #[test]
    fn load_and_read_back() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        let p = store.projection(id).unwrap();
        assert_eq!(p.num_rows, 1000);
        assert_eq!(p.columns[0].stats.distinct, 10);

        let ra = store.reader(id, 0).unwrap();
        let mut decoded = Vec::new();
        for i in 0..ra.num_blocks() {
            ra.block(i).unwrap().decode_all(&mut decoded);
        }
        assert_eq!(decoded, a);
    }

    #[test]
    fn mismatched_columns_rejected() {
        let store = Store::in_memory();
        let a = vec![1, 2, 3];
        let b = vec![1, 2];
        assert!(store.load_projection(&demo_spec(), &[&a, &b]).is_err());
        assert!(store.load_projection(&demo_spec(), &[&a]).is_err());
    }

    #[test]
    fn unsorted_data_rejected() {
        let store = Store::in_memory();
        let a = vec![2, 1, 3]; // declared Primary but not sorted
        let b = vec![0, 0, 0];
        assert!(store.load_projection(&demo_spec(), &[&a, &b]).is_err());
    }

    #[test]
    fn pool_serves_second_read_without_io() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        let r = store.reader(id, 0).unwrap();
        r.block(0).unwrap();
        let after_first = store.meter().snapshot();
        r.block(0).unwrap();
        assert_eq!(store.meter().snapshot(), after_first, "hit must not do I/O");
        assert!((r.resident_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cold_reset_forces_refetch() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        let r = store.reader(id, 0).unwrap();
        r.block(0).unwrap();
        store.cold_reset();
        assert_eq!(store.meter().snapshot().block_reads, 0);
        r.block(0).unwrap();
        assert_eq!(store.meter().snapshot().block_reads, 1);
    }

    #[test]
    fn persistent_store_reloads_catalog() {
        let dir = std::env::temp_dir().join(format!("matstrat-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (a, b) = demo_data();
        {
            let store = Store::open_dir(&dir).unwrap();
            store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        }
        // Fresh handle: catalog and data must come back from disk.
        let store = Store::open_dir(&dir).unwrap();
        let p = store.projection_by_name("demo").unwrap();
        assert_eq!(p.num_rows, 1000);
        let r = store.reader(p.id, 1).unwrap();
        let block = r.block(0).unwrap();
        let pl = block.scan_positions(&Predicate::eq(b[0]));
        assert!(pl.contains(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_load_is_byte_identical_to_serial() {
        // Mixed encodings and widths, enough data for several blocks per
        // column: the column-parallel loader must produce the exact
        // files, stats, and catalog entry of a serial load.
        let n = 150_000usize;
        let a: Vec<Value> = (0..n).map(|i| (i / 5000) as Value).collect();
        let b: Vec<Value> = (0..n).map(|i| ((i * 31) % 1000) as Value).collect();
        let c: Vec<Value> = (0..n).map(|i| ((i * 7) % 5) as Value).collect();
        let d: Vec<Value> = (0..n).map(|i| (i * i % 97) as Value).collect();
        let spec = ProjectionSpec::new("wide")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", EncodingKind::Plain, SortOrder::None)
            .column("c", EncodingKind::BitVec, SortOrder::None)
            .column("d", EncodingKind::Dict, SortOrder::None);
        let cols: [&[Value]; 4] = [&a, &b, &c, &d];

        let load = |workers: usize| {
            let disk = Arc::new(MemDisk::new());
            let store = Store::with_disk(Arc::clone(&disk) as Arc<dyn Disk>, 64, false);
            let id = store
                .load_projection_with_workers(&spec, &cols, workers)
                .unwrap();
            let proj = store.projection(id).unwrap();
            let mut files: Vec<(String, Vec<u8>)> = disk
                .list()
                .into_iter()
                .map(|f| {
                    let len = disk.len(&f).unwrap() as usize;
                    let bytes = disk.read_at(&f, 0, len).unwrap();
                    (f, bytes)
                })
                .collect();
            files.sort();
            (proj, files)
        };

        let (serial_proj, serial_files) = load(1);
        for workers in [2, 4, 8] {
            let (proj, files) = load(workers);
            assert_eq!(proj.num_rows, serial_proj.num_rows);
            for (s, p) in serial_proj.columns.iter().zip(&proj.columns) {
                assert_eq!(s.stats, p.stats, "workers={workers} col {}", s.name);
                assert_eq!(s.file, p.file);
                assert_eq!(s.width, p.width);
            }
            assert_eq!(files, serial_files, "workers={workers}: file bytes");
        }
    }

    /// A disk that delegates to [`MemDisk`] but fails every write to
    /// files whose name contains `poison` — forces an encode error
    /// *inside* a loader worker, past the serial pre-validation.
    #[derive(Debug)]
    struct PoisonedDisk {
        inner: MemDisk,
        poison: &'static str,
    }

    impl Disk for PoisonedDisk {
        fn create(&self, name: &str) -> matstrat_common::Result<()> {
            self.inner.create(name)
        }
        fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> matstrat_common::Result<()> {
            if name.contains(self.poison) {
                return Err(Error::invalid(format!("injected disk failure on {name}")));
            }
            self.inner.write_at(name, offset, data)
        }
        fn read_at(&self, name: &str, offset: u64, len: usize) -> matstrat_common::Result<Vec<u8>> {
            self.inner.read_at(name, offset, len)
        }
        fn len(&self, name: &str) -> matstrat_common::Result<u64> {
            self.inner.len(name)
        }
        fn exists(&self, name: &str) -> bool {
            self.inner.exists(name)
        }
        fn list(&self) -> Vec<String> {
            self.inner.list()
        }
    }

    #[test]
    fn parallel_load_propagates_worker_encode_errors() {
        // Column c2's file is poisoned: its worker hits the error mid-
        // encode while siblings succeed, and the load must surface it
        // at every worker count (the slots reassembly keeps the first
        // error in column order).
        let a: Vec<Value> = (0..5000).collect();
        let cols: [&[Value]; 4] = [&a, &a, &a, &a];
        let spec = ProjectionSpec::new("p")
            .column("w", EncodingKind::Plain, SortOrder::Primary)
            .column("x", EncodingKind::Plain, SortOrder::None)
            .column("y", EncodingKind::Plain, SortOrder::None)
            .column("z", EncodingKind::Plain, SortOrder::None);
        for workers in [1, 2, 4] {
            let disk = Arc::new(PoisonedDisk {
                inner: MemDisk::new(),
                poison: "_c2_",
            });
            let store = Store::with_disk(disk, 64, false);
            let err = store
                .load_projection_with_workers(&spec, &cols, workers)
                .unwrap_err();
            assert!(
                err.to_string().contains("injected disk failure"),
                "workers={workers}: {err}"
            );
            // The failed load must not register a projection.
            assert!(store.projection_names().is_empty(), "workers={workers}");
        }
    }

    #[test]
    fn projection_names_listing() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        assert_eq!(store.projection_names(), vec!["demo".to_string()]);
        assert!(store.projection_by_name("demo").is_ok());
        assert!(store.projection_by_name("nope").is_err());
    }
}
