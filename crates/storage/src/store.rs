//! The storage facade: disk + buffer pool + I/O meter + catalog.
//!
//! A [`Store`] owns everything below the query executor. Loading a
//! projection writes one file per column; reading goes through
//! [`ColumnReader`], which pulls blocks through the buffer pool and
//! charges the I/O meter on misses.
//!
//! # The write path
//!
//! Bulk loads aside, a table changes through [`Store::insert_rows`] and
//! [`Store::delete_positions`]. Both log to the table's write-ahead log
//! first (`wal_t{N}.log`, one group commit per call — see the
//! `matstrat-wal` crate), then apply to the in-memory
//! [`DeltaStore`](crate::delta::DeltaStore). Scans merge the delta with
//! the immutable blocks through the `(ProjectionInfo, delta snapshot)`
//! pair returned by [`Store::scan_snapshot`].
//!
//! [`Store::compact`] folds a table's delta back into fresh immutable
//! column files, in logical row order (so results are byte-identical
//! across a compaction), and swaps the catalog entry atomically with
//! respect to `scan_snapshot`. Crash safety comes from ordering: new
//! files are written first, then the catalog with a bumped
//! `wal_epoch` is persisted, and only then is the WAL truncated — a
//! crash anywhere in between replays old-epoch records as stale no-ops.
//! Writers serialize with each other and with compaction on a single
//! write mutex; readers never take it.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use matstrat_common::{Error, Pos, Result, TableId, Value, Width};
use parking_lot::{Mutex, RwLock};

use crate::block::EncodedBlock;
use crate::catalog::{
    verify_sort_order, Catalog, ColumnInfo, ProjectionInfo, ProjectionSpec, SortOrder,
};
use crate::delta::{DeltaStore, TableDelta};
use crate::disk::{Disk, FileDisk, MemDisk};
use crate::encoding::EncodingKind;
use crate::file::{BlockIndexEntry, ColumnFileReader, ColumnFileWriter};
use crate::meter::IoMeter;
use crate::pool::BufferPool;
use matstrat_wal::{Wal, WalRecord, WalStorage, MAX_VALUES};

/// Default buffer pool capacity: 16 Ki blocks ≈ 1 GB.
pub const DEFAULT_POOL_BLOCKS: usize = 16 * 1024;

const CATALOG_FILE: &str = "catalog.msc";

/// The WAL file of table `t` — one log per table, so compacting one
/// table truncates only its own log.
fn wal_file(t: TableId) -> String {
    format!("wal_t{}.log", t.0)
}

/// Sorted ascending distinct values of a column — the shared dictionary
/// a `shared_dict` column encodes every block against.
fn sorted_distinct(data: &[Value]) -> Vec<Value> {
    let mut d = data.to_vec();
    d.sort_unstable();
    d.dedup();
    d
}

/// Adapts the store's [`Disk`] to the wal crate's [`WalStorage`]: the
/// log is just another named file, created on first append.
struct DiskWal {
    disk: Arc<dyn Disk>,
    name: String,
}

impl WalStorage for DiskWal {
    fn len(&self) -> Result<u64> {
        if self.disk.exists(&self.name) {
            self.disk.len(&self.name)
        } else {
            Ok(0)
        }
    }

    fn append(&self, bytes: &[u8]) -> Result<()> {
        if !self.disk.exists(&self.name) {
            self.disk.create(&self.name)?;
        }
        let at = self.disk.len(&self.name)?;
        self.disk.write_at(&self.name, at, bytes)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let bytes = self.disk.read_at(&self.name, offset, buf.len())?;
        buf.copy_from_slice(&bytes);
        Ok(())
    }

    fn reset(&self) -> Result<()> {
        self.disk.create(&self.name)
    }

    fn sync(&self) -> Result<()> {
        self.disk.sync(&self.name)
    }
}

/// What WAL replay found for one table when the store opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The table whose log was replayed.
    pub table: TableId,
    /// Live records applied to the rebuilt delta.
    pub applied: u64,
    /// Whole records that passed CRC + sequence checks (live + stale).
    pub recovered: u64,
    /// `true` when replay stopped at a torn or corrupt tail.
    pub torn: bool,
}

struct StoreInner {
    disk: Arc<dyn Disk>,
    pool: BufferPool,
    meter: IoMeter,
    catalog: RwLock<Catalog>,
    readers: RwLock<HashMap<String, Arc<ColumnFileReader>>>,
    persistent: bool,
    /// Mutable side of every table; see [`crate::delta`].
    delta: DeltaStore,
    /// Open per-table logs, created lazily on first write.
    wals: Mutex<HashMap<TableId, Wal>>,
    /// Serializes writers and compaction. Readers never take it: they
    /// get consistency from [`Store::scan_snapshot`]'s retry loop.
    write_lock: Mutex<()>,
    /// What replay found when this store opened (empty for fresh disks).
    recovery: Mutex<Vec<RecoveryReport>>,
}

/// Cheap-to-clone handle to the storage engine.
#[derive(Clone)]
pub struct Store {
    inner: Arc<StoreInner>,
}

impl Store {
    /// A store backed by an in-memory disk image.
    pub fn in_memory() -> Store {
        Store::with_disk(Arc::new(MemDisk::new()), DEFAULT_POOL_BLOCKS, false)
    }

    /// A store backed by an in-memory disk with a custom pool capacity
    /// (in blocks) — the knob for cold/warm-cache experiments.
    pub fn in_memory_with_pool(pool_blocks: usize) -> Store {
        Store::with_disk(Arc::new(MemDisk::new()), pool_blocks, false)
    }

    /// A store backed by real files under `dir`; reloads the catalog if
    /// one was persisted there and replays any write-ahead logs.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Store> {
        let disk: Arc<dyn Disk> = Arc::new(FileDisk::open(dir)?);
        Store::open_disk(disk, DEFAULT_POOL_BLOCKS)
    }

    /// Open (rather than create) a store over an existing [`Disk`]:
    /// reload the persisted catalog, then replay every table's
    /// write-ahead log into a rebuilt delta. This is `open_dir` without
    /// the directory — crash-recovery tests hand the same `Arc<MemDisk>`
    /// to a second store to simulate a restart.
    pub fn open_disk(disk: Arc<dyn Disk>, pool_blocks: usize) -> Result<Store> {
        let store = Store::with_disk(disk, pool_blocks, true);
        store.reload_catalog()?;
        store.recover_wals()?;
        Ok(store)
    }

    /// A store over any [`Disk`] implementation.
    pub fn with_disk(disk: Arc<dyn Disk>, pool_blocks: usize, persistent: bool) -> Store {
        Store {
            inner: Arc::new(StoreInner {
                disk,
                pool: BufferPool::new(pool_blocks),
                meter: IoMeter::new(),
                catalog: RwLock::new(Catalog::new()),
                readers: RwLock::new(HashMap::new()),
                persistent,
                delta: DeltaStore::new(),
                wals: Mutex::new(HashMap::new()),
                write_lock: Mutex::new(()),
                recovery: Mutex::new(Vec::new()),
            }),
        }
    }

    fn reload_catalog(&self) -> Result<()> {
        if self.inner.disk.exists(CATALOG_FILE) {
            let len = self.inner.disk.len(CATALOG_FILE)?;
            let bytes = self.inner.disk.read_at(CATALOG_FILE, 0, len as usize)?;
            *self.inner.catalog.write() = Catalog::parse(&bytes)?;
        }
        Ok(())
    }

    fn persist_catalog(&self) -> Result<()> {
        if self.inner.persistent {
            let bytes = self.inner.catalog.read().serialize();
            self.inner.disk.create(CATALOG_FILE)?;
            self.inner.disk.write_at(CATALOG_FILE, 0, &bytes)?;
        }
        Ok(())
    }

    /// Load a projection: one column file per spec column.
    ///
    /// Validates that all columns have equal length and that the declared
    /// sort key actually orders the data lexicographically. The packed
    /// width for `Plain` columns is chosen from the observed min/max.
    ///
    /// Columns are independent — each writes its own file — so encoding
    /// runs column-parallel on up to `MATSTRAT_THREADS` scoped workers
    /// (the executor's worker-pool pattern). The produced files, stats,
    /// and catalog entry are identical at any worker count; only wall
    /// time changes.
    pub fn load_projection(&self, spec: &ProjectionSpec, columns: &[&[Value]]) -> Result<TableId> {
        self.load_projection_with_workers(spec, columns, matstrat_common::default_parallelism())
    }

    /// [`load_projection`](Self::load_projection) with an explicit worker
    /// count (clamped to `[1, columns]`).
    pub fn load_projection_with_workers(
        &self,
        spec: &ProjectionSpec,
        columns: &[&[Value]],
        workers: usize,
    ) -> Result<TableId> {
        if spec.columns.len() != columns.len() {
            return Err(Error::invalid(format!(
                "spec has {} columns, data has {}",
                spec.columns.len(),
                columns.len()
            )));
        }
        let num_rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != num_rows) {
            return Err(Error::invalid("all columns must have equal length"));
        }
        let sort_cols: Vec<&[Value]> = spec.sort_key().iter().map(|&i| columns[i]).collect();
        verify_sort_order(&sort_cols)?;

        // Reserve the table id up front so file names are stable.
        let table_idx = self.inner.catalog.read().projections().len() as u32;
        let encode_one = |ci: usize| -> Result<ColumnInfo> {
            let cspec = &spec.columns[ci];
            let data = columns[ci];
            let (min, max) = data.iter().fold((Value::MAX, Value::MIN), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
            let width = if data.is_empty() {
                Width::W8
            } else {
                Width::fitting(min, max)
            };
            let file = format!("t{table_idx}_c{ci}_{}.col", cspec.name);
            if cspec.shared_dict && cspec.encoding != EncodingKind::Dict {
                return Err(Error::invalid(format!(
                    "column {}: shared_dict requires dict encoding",
                    cspec.name
                )));
            }
            let mut w = if cspec.shared_dict {
                ColumnFileWriter::create_shared_dict(
                    self.inner.disk.as_ref(),
                    &file,
                    sorted_distinct(data),
                )?
            } else {
                ColumnFileWriter::create(self.inner.disk.as_ref(), &file, cspec.encoding, width)?
            };
            w.push_all(data)?;
            let stats = w.finish()?;
            Ok(ColumnInfo {
                id: matstrat_common::ColumnId(0), // assigned by the catalog
                name: cspec.name.clone(),
                encoding: cspec.encoding,
                width,
                sort: cspec.sort,
                stats,
                file,
                shared_dict: cspec.shared_dict,
            })
        };
        // Scoped workers claim column indices from a shared counter
        // (columns vary wildly in encoding cost, so striding would
        // skew); results are reordered by index afterwards, so the
        // catalog entry is identical to a serial load. Encoding only
        // *writes* — there is no per-thread meter state to clean up.
        let infos: Vec<ColumnInfo> =
            matstrat_common::par_map_indexed(spec.columns.len(), workers, encode_one, || {})?;
        let id = self
            .inner
            .catalog
            .write()
            .add_projection(&spec.name, num_rows as u64, infos)?;
        self.persist_catalog()?;
        Ok(id)
    }

    /// Projection metadata by id.
    pub fn projection(&self, id: TableId) -> Result<ProjectionInfo> {
        Ok(self.inner.catalog.read().projection(id)?.clone())
    }

    /// Projection metadata by name.
    pub fn projection_by_name(&self, name: &str) -> Result<ProjectionInfo> {
        Ok(self.inner.catalog.read().projection_by_name(name)?.clone())
    }

    /// Names of all loaded projections.
    pub fn projection_names(&self) -> Vec<String> {
        self.inner
            .catalog
            .read()
            .projections()
            .iter()
            .map(|p| p.name.clone())
            .collect()
    }

    /// Open a reader for column `col_idx` of projection `table`.
    pub fn reader(&self, table: TableId, col_idx: usize) -> Result<ColumnReader> {
        let info = {
            let cat = self.inner.catalog.read();
            cat.projection(table)?.column(col_idx)?.clone()
        };
        self.reader_for(&info)
    }

    /// Open a reader for a column whose [`ColumnInfo`] the caller already
    /// holds — the executor pins every reader to the catalog entry from
    /// one [`Self::scan_snapshot`], so a compaction that swaps the
    /// projection mid-query cannot hand it a mix of generations (the old
    /// files stay on disk for exactly this reason).
    pub fn reader_for(&self, info: &ColumnInfo) -> Result<ColumnReader> {
        let file = self.open_file(&info.file)?;
        Ok(ColumnReader {
            store: self.inner.clone(),
            info: info.clone(),
            file,
        })
    }

    fn open_file(&self, name: &str) -> Result<Arc<ColumnFileReader>> {
        if let Some(f) = self.inner.readers.read().get(name) {
            return Ok(Arc::clone(f));
        }
        let f = Arc::new(ColumnFileReader::open(self.inner.disk.as_ref(), name)?);
        self.inner
            .readers
            .write()
            .insert(name.to_string(), Arc::clone(&f));
        Ok(f)
    }

    /// The buffer pool (for stats and cold-cache resets).
    pub fn pool(&self) -> &BufferPool {
        &self.inner.pool
    }

    /// The simulated-disk meter.
    pub fn meter(&self) -> &IoMeter {
        &self.inner.meter
    }

    /// Drop every cached block and reset I/O accounting — a cold start.
    pub fn cold_reset(&self) {
        self.inner.pool.clear();
        self.inner.meter.reset();
    }

    /// The disk this store reads and writes (crash tests reopen a second
    /// store over the same image and tamper with WAL bytes through it).
    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.inner.disk
    }

    /// What WAL replay found when this store opened, one entry per table
    /// that had a log on disk. Empty for stores created fresh.
    pub fn recovery_reports(&self) -> Vec<RecoveryReport> {
        self.inner.recovery.lock().clone()
    }

    /// Replay every table's WAL (if present) into a rebuilt delta.
    fn recover_wals(&self) -> Result<()> {
        let projections: Vec<(TableId, u64, u32)> = {
            let cat = self.inner.catalog.read();
            cat.projections()
                .iter()
                .map(|p| (p.id, p.num_rows, p.wal_epoch))
                .collect()
        };
        let mut reports = Vec::new();
        for (table, base_rows, epoch) in projections {
            let name = wal_file(table);
            if !self.inner.disk.exists(&name) {
                continue;
            }
            let storage = DiskWal {
                disk: Arc::clone(&self.inner.disk),
                name,
            };
            let (wal, recovery) = Wal::open(Box::new(storage), epoch)?;
            self.apply_records(table, base_rows, &recovery.records)?;
            reports.push(RecoveryReport {
                table,
                applied: recovery.records.len() as u64,
                recovered: recovery.recovered,
                torn: recovery.torn,
            });
            self.inner.wals.lock().insert(table, wal);
        }
        *self.inner.recovery.lock() = reports;
        Ok(())
    }

    /// Rebuild delta state from replayed records, in log order.
    fn apply_records(&self, table: TableId, base_rows: u64, records: &[WalRecord]) -> Result<()> {
        for rec in records {
            debug_assert_eq!(rec.table(), table.0, "record in the wrong table's log");
            match rec {
                WalRecord::Insert { pos, values, .. } => {
                    let stamped = self.inner.delta.append_rows(
                        table,
                        base_rows,
                        std::slice::from_ref(values),
                    );
                    if stamped != *pos {
                        return Err(Error::corrupt(format!(
                            "WAL replay: insert stamped {stamped}, log says {pos}"
                        )));
                    }
                }
                WalRecord::Delete { pos, .. } => {
                    self.inner
                        .delta
                        .delete_positions(table, base_rows, &[*pos])?;
                }
            }
        }
        Ok(())
    }

    /// Run `f` on `table`'s open WAL, opening it (empty or not) first if
    /// needed. Callers hold the write lock.
    fn with_wal<R>(
        &self,
        table: TableId,
        epoch: u32,
        f: impl FnOnce(&mut Wal) -> Result<R>,
    ) -> Result<R> {
        let mut wals = self.inner.wals.lock();
        if let std::collections::hash_map::Entry::Vacant(slot) = wals.entry(table) {
            let storage = DiskWal {
                disk: Arc::clone(&self.inner.disk),
                name: wal_file(table),
            };
            let (wal, _) = Wal::open(Box::new(storage), epoch)?;
            slot.insert(wal);
        }
        f(wals.get_mut(&table).expect("just inserted"))
    }

    /// Insert `rows` into `table`: logged to the WAL (one group commit),
    /// then applied to the delta. Returns the position stamp of the
    /// first inserted row. Durable when this returns.
    pub fn insert_rows(&self, table: TableId, rows: &[Vec<Value>]) -> Result<u64> {
        let _w = self.inner.write_lock.lock();
        let (ncols, base_rows, epoch) = {
            let cat = self.inner.catalog.read();
            let p = cat.projection(table)?;
            (p.columns.len(), p.num_rows, p.wal_epoch)
        };
        if ncols > MAX_VALUES {
            return Err(Error::unsupported(format!(
                "insert into a {ncols}-column projection exceeds the \
                 {MAX_VALUES}-value WAL record budget"
            )));
        }
        for row in rows {
            if row.len() != ncols {
                return Err(Error::invalid(format!(
                    "insert row has {} values, projection has {ncols} columns",
                    row.len()
                )));
            }
        }
        let start = self
            .inner
            .delta
            .snapshot(table)
            .map_or(base_rows, |d| d.total_rows());
        let records: Vec<WalRecord> = rows
            .iter()
            .enumerate()
            .map(|(i, values)| WalRecord::Insert {
                table: table.0,
                pos: start + i as u64,
                values: values.clone(),
            })
            .collect();
        self.with_wal(table, epoch, |wal| wal.append_batch(&records))?;
        let stamped = self.inner.delta.append_rows(table, base_rows, rows);
        debug_assert_eq!(stamped, start);
        Ok(start)
    }

    /// Delete the rows at `positions` of `table`: logged to the WAL,
    /// then applied to the delta. Positions already deleted are skipped;
    /// out-of-range positions are an error (nothing is logged or
    /// applied). Returns how many rows were newly deleted. Durable when
    /// this returns.
    pub fn delete_positions(&self, table: TableId, positions: &[u64]) -> Result<u64> {
        self.delete_positions_inner(table, None, positions)
            .map(|n| n.expect("unconditional delete"))
    }

    /// [`delete_positions`], but only if the table's compaction epoch
    /// still equals `epoch` — the find-then-delete idiom: a caller that
    /// resolved positions against a [`scan_snapshot`] passes that
    /// snapshot's `wal_epoch`, and gets `None` (nothing logged or
    /// applied) when a compaction has since rewritten the position
    /// space; rescan and retry.
    ///
    /// [`delete_positions`]: Self::delete_positions
    /// [`scan_snapshot`]: Self::scan_snapshot
    pub fn delete_positions_at_epoch(
        &self,
        table: TableId,
        epoch: u32,
        positions: &[u64],
    ) -> Result<Option<u64>> {
        self.delete_positions_inner(table, Some(epoch), positions)
    }

    fn delete_positions_inner(
        &self,
        table: TableId,
        expect_epoch: Option<u32>,
        positions: &[u64],
    ) -> Result<Option<u64>> {
        let _w = self.inner.write_lock.lock();
        let (base_rows, epoch) = {
            let cat = self.inner.catalog.read();
            let p = cat.projection(table)?;
            (p.num_rows, p.wal_epoch)
        };
        if expect_epoch.is_some_and(|e| e != epoch) {
            return Ok(None);
        }
        let snap = self.inner.delta.snapshot(table);
        let total = snap.as_ref().map_or(base_rows, |d| d.total_rows());
        let mut fresh: Vec<u64> = positions.to_vec();
        fresh.sort_unstable();
        fresh.dedup();
        if let Some(&worst) = fresh.last() {
            if worst >= total {
                return Err(Error::invalid(format!(
                    "delete position {worst} out of range (table has {total} rows)"
                )));
            }
        }
        if let Some(d) = &snap {
            fresh.retain(|&p| !d.is_deleted(p));
        }
        if fresh.is_empty() {
            return Ok(Some(0));
        }
        let records: Vec<WalRecord> = fresh
            .iter()
            .map(|&pos| WalRecord::Delete {
                table: table.0,
                pos,
            })
            .collect();
        self.with_wal(table, epoch, |wal| wal.append_batch(&records))?;
        self.inner
            .delta
            .delete_positions(table, base_rows, &fresh)
            .map(Some)
    }

    /// A consistent `(projection, delta)` pair for scanning `table`.
    ///
    /// The delta is `None` when the table has no pending writes — the
    /// read-only fast path. Consistency against a racing [`compact`]
    /// (which swaps both under the catalog write lock) comes from
    /// optimistic retry: re-read until the pair demonstrably belongs to
    /// one moment — delta base matches the catalog row count and the
    /// catalog epoch did not move between the two reads.
    ///
    /// [`compact`]: Self::compact
    pub fn scan_snapshot(
        &self,
        table: TableId,
    ) -> Result<(ProjectionInfo, Option<Arc<TableDelta>>)> {
        loop {
            let info = self.inner.catalog.read().projection(table)?.clone();
            let delta = self.inner.delta.snapshot(table);
            if let Some(d) = &delta {
                if d.base_rows != info.num_rows {
                    continue; // caught mid-swap; go again
                }
            }
            let epoch_now = self.inner.catalog.read().projection(table)?.wal_epoch;
            if epoch_now == info.wal_epoch {
                return Ok((info, delta));
            }
        }
    }

    /// Tables with a non-empty delta, in id order.
    pub fn dirty_tables(&self) -> Vec<TableId> {
        self.inner.delta.dirty_tables()
    }

    /// Fold `table`'s delta into fresh immutable column files and swap
    /// them in. Returns `false` (and does nothing) when the delta is
    /// empty. See the module docs for the crash-ordering argument.
    ///
    /// Holds the write lock for the duration: writers queue behind the
    /// rewrite, readers race it freely and stay byte-identical — the
    /// merge preserves logical row order (immutable positions, then
    /// surviving inserts in stamp order), so the same scan sees the same
    /// rows whether it resolves against old blocks + delta or the new
    /// blocks. Columns whose declared sort order the merged data no
    /// longer satisfies are demoted to [`SortOrder::None`] rather than
    /// re-sorted — reordering rows would change query output.
    pub fn compact(&self, table: TableId) -> Result<bool> {
        let _w = self.inner.write_lock.lock();
        let info = self.projection(table)?;
        let delta = match self.inner.delta.snapshot(table) {
            Some(d) if !d.is_empty() => d,
            _ => return Ok(false),
        };
        debug_assert_eq!(delta.base_rows, info.num_rows, "write-lock invariant");

        // Merge every column in logical row order. Maintenance I/O goes
        // straight to the file reader: no pool churn, no meter charges —
        // the cold-read ledger stays a pure account of query work.
        let base_deletes = delta.base_deletes();
        let live_insert_idx: Vec<usize> = (0..delta.inserts.len())
            .filter(|&i| !delta.is_deleted(delta.base_rows + i as u64))
            .collect();
        let new_epoch = info.wal_epoch + 1;
        let mut merged: Vec<Vec<Value>> = Vec::with_capacity(info.columns.len());
        for (ci, col) in info.columns.iter().enumerate() {
            let file = self.open_file(&col.file)?;
            let mut vals: Vec<Value> = Vec::with_capacity(delta.live_rows() as usize);
            let mut block_buf = Vec::new();
            for b in 0..file.num_blocks() {
                let block = file.fetch_block(self.inner.disk.as_ref(), b)?;
                block_buf.clear();
                block.decode_all(&mut block_buf);
                vals.extend_from_slice(&block_buf);
            }
            if vals.len() as u64 != delta.base_rows {
                return Err(Error::corrupt(format!(
                    "column {} decoded {} rows, catalog says {}",
                    col.name,
                    vals.len(),
                    delta.base_rows
                )));
            }
            if !base_deletes.is_empty() {
                let mut di = 0usize;
                let mut keep = 0u64;
                vals.retain(|_| {
                    let pos = keep;
                    keep += 1;
                    while di < base_deletes.len() && base_deletes[di] < pos {
                        di += 1;
                    }
                    !(di < base_deletes.len() && base_deletes[di] == pos)
                });
            }
            vals.extend(live_insert_idx.iter().map(|&i| delta.inserts[i][ci]));
            merged.push(vals);
        }
        let new_rows = merged.first().map_or(0, |c| c.len()) as u64;
        debug_assert_eq!(new_rows, delta.live_rows());

        // Does the merged data still satisfy the declared sort key?
        let mut key: Vec<(u8, usize)> = info
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.sort != SortOrder::None)
            .map(|(ci, c)| (c.sort.rank(), ci))
            .collect();
        key.sort_unstable();
        let sort_cols: Vec<&[Value]> = key.iter().map(|&(_, ci)| merged[ci].as_slice()).collect();
        let keep_sort = verify_sort_order(&sort_cols).is_ok();

        // Write the new generation of column files (versioned names, so
        // stale pool keys and reader handles can never alias them).
        let mut new_infos = Vec::with_capacity(info.columns.len());
        for (ci, col) in info.columns.iter().enumerate() {
            let data = &merged[ci];
            let (min, max) = data.iter().fold((Value::MAX, Value::MIN), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
            let width = if data.is_empty() {
                Width::W8
            } else {
                Width::fitting(min, max)
            };
            let file = format!("t{}_c{ci}_{}_e{new_epoch}.col", table.0, col.name);
            // A shared-dict column stays shared-dict across compaction;
            // the dictionary is recomputed because inserts may have
            // widened the value domain.
            let mut w = if col.shared_dict {
                ColumnFileWriter::create_shared_dict(
                    self.inner.disk.as_ref(),
                    &file,
                    sorted_distinct(data),
                )?
            } else {
                ColumnFileWriter::create(self.inner.disk.as_ref(), &file, col.encoding, width)?
            };
            w.push_all(data)?;
            let stats = w.finish()?;
            new_infos.push(ColumnInfo {
                id: matstrat_common::ColumnId(0), // assigned by the catalog
                name: col.name.clone(),
                encoding: col.encoding,
                width,
                sort: if keep_sort { col.sort } else { SortOrder::None },
                stats,
                file,
                shared_dict: col.shared_dict,
            });
        }

        // Swap catalog + delta atomically with respect to scan_snapshot
        // (readers block on the catalog lock or retry on the epoch).
        let catalog_bytes = {
            let mut cat = self.inner.catalog.write();
            cat.replace_projection(table, new_rows, new_infos)?;
            self.inner.delta.replace(table, TableDelta::new(new_rows));
            self.inner.persistent.then(|| cat.serialize())
        };
        // Persist the new epoch BEFORE truncating the log: a crash in
        // between replays the old records as stale-epoch no-ops.
        if let Some(bytes) = catalog_bytes {
            self.inner.disk.create(CATALOG_FILE)?;
            self.inner.disk.write_at(CATALOG_FILE, 0, &bytes)?;
            self.inner.disk.sync(CATALOG_FILE)?;
        }
        self.with_wal(table, new_epoch, |wal| wal.truncate_to_epoch(new_epoch))?;

        // The old generation is unreachable from the catalog; release
        // its cached blocks and file handles (files stay on disk for
        // readers that started before the swap).
        for col in &info.columns {
            self.inner.pool.invalidate_file(&col.file);
            self.inner.readers.write().remove(&col.file);
        }
        Ok(true)
    }

    /// Compact every table with a non-empty delta; returns how many
    /// tables were compacted.
    pub fn compact_all(&self) -> Result<usize> {
        let mut n = 0;
        for t in self.dirty_tables() {
            if self.compact(t)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Start a background compactor: a thread that folds dirty tables
    /// into fresh immutable blocks every `interval` until the returned
    /// handle is stopped (or dropped). Queries race it freely — that is
    /// the point of the atomic swap.
    pub fn spawn_compactor(&self, interval: std::time::Duration) -> CompactorHandle {
        let store = self.clone();
        let signal = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let thread_signal = Arc::clone(&signal);
        let thread = std::thread::spawn(move || {
            let (stop, cvar) = &*thread_signal;
            let mut stopped = stop.lock().unwrap();
            loop {
                if *stopped {
                    return;
                }
                let (guard, _) = cvar.wait_timeout(stopped, interval).unwrap();
                stopped = guard;
                if *stopped {
                    return;
                }
                drop(stopped);
                // Errors are swallowed by design: a failed maintenance
                // pass leaves the (still consistent) delta for the next
                // tick; queries and writes are unaffected.
                let _ = store.compact_all();
                stopped = stop.lock().unwrap();
            }
        });
        CompactorHandle {
            signal,
            thread: Some(thread),
        }
    }
}

/// Handle to a running background compactor; stops it on drop.
pub struct CompactorHandle {
    signal: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl CompactorHandle {
    /// Stop the compactor and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            let (stop, cvar) = &*self.signal;
            *stop.lock().unwrap() = true;
            cvar.notify_all();
            let _ = thread.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Read access to one column: blocks come through the buffer pool.
#[derive(Clone)]
pub struct ColumnReader {
    store: Arc<StoreInner>,
    info: ColumnInfo,
    file: Arc<ColumnFileReader>,
}

impl ColumnReader {
    /// Catalog metadata for the column.
    pub fn info(&self) -> &ColumnInfo {
        &self.info
    }

    /// Physical encoding.
    pub fn encoding(&self) -> EncodingKind {
        self.info.encoding
    }

    /// Total rows (`||C||`).
    pub fn num_rows(&self) -> u64 {
        self.info.stats.num_rows
    }

    /// Total blocks (`|C|`).
    pub fn num_blocks(&self) -> usize {
        self.file.num_blocks()
    }

    /// Index entry (start position, row count) for block `idx` — no I/O.
    pub fn block_meta(&self, idx: usize) -> Result<BlockIndexEntry> {
        self.file
            .index()
            .get(idx)
            .copied()
            .ok_or_else(|| Error::invalid(format!("block {idx} out of range")))
    }

    /// Index of the block containing position `pos` — no I/O.
    pub fn block_for_pos(&self, pos: Pos) -> Result<usize> {
        self.file.block_for_pos(pos)
    }

    /// Fetch block `idx` through the buffer pool; a miss reads from disk
    /// and charges the I/O meter. Concurrent misses on one block are
    /// single-flighted by the pool, so parallel cold runs read and count
    /// each block exactly once, like a serial run — within one query.
    /// Across queries, a caller served by *another* query's in-flight
    /// fill gets a credited `block_read` on its per-thread meter share
    /// (the global physical count is untouched), so each concurrent
    /// query's cold ledger matches what it does when run alone.
    pub fn block(&self, idx: usize) -> Result<Arc<EncodedBlock>> {
        let key = (self.info.file.clone(), idx as u32);
        let meta = self.block_meta(idx)?;
        let token = crate::meter::current_query_token();
        let (block, waited) = self.store.pool.get_or_insert_with_owner(&key, token, || {
            self.store
                .meter
                .record_read(&self.info.file, meta.offset, meta.len as u64);
            Ok::<_, Error>(Arc::new(
                self.file.fetch_block(self.store.disk.as_ref(), idx)?,
            ))
        })?;
        if waited {
            self.store.meter.credit_block_read(&self.info.file);
        }
        Ok(block)
    }

    /// Fraction of this column's blocks currently resident in the pool —
    /// the model's `F`.
    pub fn resident_fraction(&self) -> f64 {
        let total = self.num_blocks();
        if total == 0 {
            return 1.0;
        }
        self.store.pool.resident_blocks(&self.info.file) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SortOrder;
    use matstrat_common::Predicate;

    fn demo_spec() -> ProjectionSpec {
        ProjectionSpec::new("demo")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", EncodingKind::Plain, SortOrder::None)
    }

    fn demo_data() -> (Vec<Value>, Vec<Value>) {
        let a: Vec<Value> = (0..1000).map(|i| i / 100).collect();
        let b: Vec<Value> = (0..1000).map(|i| (i * 7) % 13).collect();
        (a, b)
    }

    #[test]
    fn load_and_read_back() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        let p = store.projection(id).unwrap();
        assert_eq!(p.num_rows, 1000);
        assert_eq!(p.columns[0].stats.distinct, 10);

        let ra = store.reader(id, 0).unwrap();
        let mut decoded = Vec::new();
        for i in 0..ra.num_blocks() {
            ra.block(i).unwrap().decode_all(&mut decoded);
        }
        assert_eq!(decoded, a);
    }

    #[test]
    fn shared_dict_survives_insert_and_compaction() {
        let store = Store::in_memory();
        let a: Vec<Value> = (0..1000).map(|i| i / 100).collect();
        let k: Vec<Value> = (0..1000).map(|i| ((i * 31) % 9) * 10).collect();
        let spec = ProjectionSpec::new("t")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column_shared_dict("k", SortOrder::None);
        let id = store.load_projection(&spec, &[&a, &k]).unwrap();
        assert!(store.projection(id).unwrap().columns[1].shared_dict);

        // Insert a row whose key widens the dictionary domain, compact,
        // and check the new generation is still a single shared dict.
        store.insert_rows(id, &[vec![9, 999]]).unwrap();
        assert!(store.compact(id).unwrap());
        let p = store.projection(id).unwrap();
        assert!(p.columns[1].shared_dict, "flag must survive compaction");
        let r = store.reader(id, 1).unwrap();
        let mut fps = std::collections::HashSet::new();
        let mut decoded = Vec::new();
        for i in 0..r.num_blocks() {
            let b = r.block(i).unwrap();
            match b.as_ref() {
                EncodedBlock::Dict(d) => {
                    assert!(d.dictionary().windows(2).all(|w| w[0] < w[1]));
                    assert!(d.dictionary().contains(&999));
                    fps.insert(d.fingerprint());
                }
                other => panic!("expected dict block, got {:?}", other.encoding()),
            }
            b.decode_all(&mut decoded);
        }
        assert_eq!(fps.len(), 1);
        let mut expected = k.clone();
        expected.push(999);
        assert_eq!(decoded, expected);
    }

    #[test]
    fn mismatched_columns_rejected() {
        let store = Store::in_memory();
        let a = vec![1, 2, 3];
        let b = vec![1, 2];
        assert!(store.load_projection(&demo_spec(), &[&a, &b]).is_err());
        assert!(store.load_projection(&demo_spec(), &[&a]).is_err());
    }

    #[test]
    fn unsorted_data_rejected() {
        let store = Store::in_memory();
        let a = vec![2, 1, 3]; // declared Primary but not sorted
        let b = vec![0, 0, 0];
        assert!(store.load_projection(&demo_spec(), &[&a, &b]).is_err());
    }

    #[test]
    fn pool_serves_second_read_without_io() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        let r = store.reader(id, 0).unwrap();
        r.block(0).unwrap();
        let after_first = store.meter().snapshot();
        r.block(0).unwrap();
        assert_eq!(store.meter().snapshot(), after_first, "hit must not do I/O");
        assert!((r.resident_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cold_reset_forces_refetch() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        let r = store.reader(id, 0).unwrap();
        r.block(0).unwrap();
        store.cold_reset();
        assert_eq!(store.meter().snapshot().block_reads, 0);
        r.block(0).unwrap();
        assert_eq!(store.meter().snapshot().block_reads, 1);
    }

    #[test]
    fn persistent_store_reloads_catalog() {
        let dir = std::env::temp_dir().join(format!("matstrat-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (a, b) = demo_data();
        {
            let store = Store::open_dir(&dir).unwrap();
            store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        }
        // Fresh handle: catalog and data must come back from disk.
        let store = Store::open_dir(&dir).unwrap();
        let p = store.projection_by_name("demo").unwrap();
        assert_eq!(p.num_rows, 1000);
        let r = store.reader(p.id, 1).unwrap();
        let block = r.block(0).unwrap();
        let pl = block.scan_positions(&Predicate::eq(b[0]));
        assert!(pl.contains(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_load_is_byte_identical_to_serial() {
        // Mixed encodings and widths, enough data for several blocks per
        // column: the column-parallel loader must produce the exact
        // files, stats, and catalog entry of a serial load.
        let n = 150_000usize;
        let a: Vec<Value> = (0..n).map(|i| (i / 5000) as Value).collect();
        let b: Vec<Value> = (0..n).map(|i| ((i * 31) % 1000) as Value).collect();
        let c: Vec<Value> = (0..n).map(|i| ((i * 7) % 5) as Value).collect();
        let d: Vec<Value> = (0..n).map(|i| (i * i % 97) as Value).collect();
        let spec = ProjectionSpec::new("wide")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column("b", EncodingKind::Plain, SortOrder::None)
            .column("c", EncodingKind::BitVec, SortOrder::None)
            .column("d", EncodingKind::Dict, SortOrder::None);
        let cols: [&[Value]; 4] = [&a, &b, &c, &d];

        let load = |workers: usize| {
            let disk = Arc::new(MemDisk::new());
            let store = Store::with_disk(Arc::clone(&disk) as Arc<dyn Disk>, 64, false);
            let id = store
                .load_projection_with_workers(&spec, &cols, workers)
                .unwrap();
            let proj = store.projection(id).unwrap();
            let mut files: Vec<(String, Vec<u8>)> = disk
                .list()
                .into_iter()
                .map(|f| {
                    let len = disk.len(&f).unwrap() as usize;
                    let bytes = disk.read_at(&f, 0, len).unwrap();
                    (f, bytes)
                })
                .collect();
            files.sort();
            (proj, files)
        };

        let (serial_proj, serial_files) = load(1);
        for workers in [2, 4, 8] {
            let (proj, files) = load(workers);
            assert_eq!(proj.num_rows, serial_proj.num_rows);
            for (s, p) in serial_proj.columns.iter().zip(&proj.columns) {
                assert_eq!(s.stats, p.stats, "workers={workers} col {}", s.name);
                assert_eq!(s.file, p.file);
                assert_eq!(s.width, p.width);
            }
            assert_eq!(files, serial_files, "workers={workers}: file bytes");
        }
    }

    /// A disk that delegates to [`MemDisk`] but fails every write to
    /// files whose name contains `poison` — forces an encode error
    /// *inside* a loader worker, past the serial pre-validation.
    #[derive(Debug)]
    struct PoisonedDisk {
        inner: MemDisk,
        poison: &'static str,
    }

    impl Disk for PoisonedDisk {
        fn create(&self, name: &str) -> matstrat_common::Result<()> {
            self.inner.create(name)
        }
        fn write_at(&self, name: &str, offset: u64, data: &[u8]) -> matstrat_common::Result<()> {
            if name.contains(self.poison) {
                return Err(Error::invalid(format!("injected disk failure on {name}")));
            }
            self.inner.write_at(name, offset, data)
        }
        fn read_at(&self, name: &str, offset: u64, len: usize) -> matstrat_common::Result<Vec<u8>> {
            self.inner.read_at(name, offset, len)
        }
        fn len(&self, name: &str) -> matstrat_common::Result<u64> {
            self.inner.len(name)
        }
        fn exists(&self, name: &str) -> bool {
            self.inner.exists(name)
        }
        fn list(&self) -> Vec<String> {
            self.inner.list()
        }
    }

    #[test]
    fn parallel_load_propagates_worker_encode_errors() {
        // Column c2's file is poisoned: its worker hits the error mid-
        // encode while siblings succeed, and the load must surface it
        // at every worker count (the slots reassembly keeps the first
        // error in column order).
        let a: Vec<Value> = (0..5000).collect();
        let cols: [&[Value]; 4] = [&a, &a, &a, &a];
        let spec = ProjectionSpec::new("p")
            .column("w", EncodingKind::Plain, SortOrder::Primary)
            .column("x", EncodingKind::Plain, SortOrder::None)
            .column("y", EncodingKind::Plain, SortOrder::None)
            .column("z", EncodingKind::Plain, SortOrder::None);
        for workers in [1, 2, 4] {
            let disk = Arc::new(PoisonedDisk {
                inner: MemDisk::new(),
                poison: "_c2_",
            });
            let store = Store::with_disk(disk, 64, false);
            let err = store
                .load_projection_with_workers(&spec, &cols, workers)
                .unwrap_err();
            assert!(
                err.to_string().contains("injected disk failure"),
                "workers={workers}: {err}"
            );
            // The failed load must not register a projection.
            assert!(store.projection_names().is_empty(), "workers={workers}");
        }
    }

    #[test]
    fn projection_names_listing() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        assert_eq!(store.projection_names(), vec!["demo".to_string()]);
        assert!(store.projection_by_name("demo").is_ok());
        assert!(store.projection_by_name("nope").is_err());
    }

    /// The logical row view of a (projection, delta) snapshot, column-
    /// major — the oracle the compaction tests compare against.
    fn logical_rows(store: &Store, table: TableId) -> Vec<Vec<Value>> {
        let (info, delta) = store.scan_snapshot(table).unwrap();
        let mut cols: Vec<Vec<Value>> = Vec::new();
        for ci in 0..info.columns.len() {
            let r = store.reader(table, ci).unwrap();
            let mut vals = Vec::new();
            let mut buf = Vec::new();
            for b in 0..r.num_blocks() {
                buf.clear();
                r.block(b).unwrap().decode_all(&mut buf);
                vals.extend_from_slice(&buf);
            }
            if let Some(d) = &delta {
                let mut live: Vec<Value> = vals
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| !d.is_deleted(*i as u64))
                    .map(|(_, v)| v)
                    .collect();
                for (i, row) in d.inserts.iter().enumerate() {
                    if !d.is_deleted(d.base_rows + i as u64) {
                        live.push(row[ci]);
                    }
                }
                cols.push(live);
            } else {
                cols.push(vals);
            }
        }
        cols
    }

    #[test]
    fn inserts_and_deletes_survive_a_reopen() {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let (a, b) = demo_data();
        let id = {
            let store = Store::open_disk(Arc::clone(&disk), 64).unwrap();
            let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
            assert_eq!(
                store.insert_rows(id, &[vec![9, 1], vec![9, 2]]).unwrap(),
                1000
            );
            assert_eq!(store.delete_positions(id, &[3, 1000]).unwrap(), 2);
            // Re-deleting is a no-op, out of range is an error.
            assert_eq!(store.delete_positions(id, &[3]).unwrap(), 0);
            assert!(store.delete_positions(id, &[5000]).is_err());
            id
        };
        // "Crash" (drop) and reopen over the same disk image.
        let store = Store::open_disk(disk, 64).unwrap();
        let reports = store.recovery_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].applied, 4, "2 inserts + 2 deletes");
        assert!(!reports[0].torn);
        let (info, delta) = store.scan_snapshot(id).unwrap();
        assert_eq!(info.num_rows, 1000);
        let d = delta.expect("replay rebuilt the delta");
        assert_eq!(d.inserts, vec![vec![9, 1], vec![9, 2]]);
        assert_eq!(d.deletes, vec![3, 1000]);
        assert_eq!(d.live_rows(), 1000);
    }

    #[test]
    fn insert_arity_and_width_are_validated() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        assert!(store.insert_rows(id, &[vec![1]]).is_err(), "arity");
        let wide_spec = (0..13).fold(ProjectionSpec::new("wide"), |s, i| {
            s.column(format!("c{i}"), EncodingKind::Plain, SortOrder::None)
        });
        let col: Vec<Value> = vec![0; 4];
        let cols: Vec<&[Value]> = (0..13).map(|_| col.as_slice()).collect();
        let wide = store.load_projection(&wide_spec, &cols).unwrap();
        let err = store.insert_rows(wide, &[vec![0; 13]]).unwrap_err();
        assert!(err.to_string().contains("record budget"), "{err}");
    }

    #[test]
    fn compaction_preserves_logical_rows_and_bumps_epoch() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        store
            .insert_rows(id, &[vec![10, 100], vec![11, 101], vec![12, 102]])
            .unwrap();
        // Delete one base row, one inserted row.
        store.delete_positions(id, &[17, 1001]).unwrap();
        let before = logical_rows(&store, id);
        assert_eq!(before[0].len(), 1001);
        assert_eq!(store.dirty_tables(), vec![id]);

        assert!(store.compact(id).unwrap());

        let (info, delta) = store.scan_snapshot(id).unwrap();
        assert!(delta.is_none(), "compaction empties the delta");
        assert_eq!(info.num_rows, 1001);
        assert_eq!(info.wal_epoch, 1);
        assert_eq!(logical_rows(&store, id), before, "byte-identical view");
        assert!(!store.compact(id).unwrap(), "nothing left to fold");
        // Appending past a compaction stamps from the new base.
        assert_eq!(store.insert_rows(id, &[vec![13, 103]]).unwrap(), 1001);
    }

    #[test]
    fn compaction_demotes_broken_sort_order_but_keeps_valid_one() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        // `a` is Primary-sorted and ends at 9; appending 10 keeps order.
        store.insert_rows(id, &[vec![10, 0]]).unwrap();
        store.compact(id).unwrap();
        let p = store.projection(id).unwrap();
        assert_eq!(p.columns[0].sort, SortOrder::Primary, "order still holds");
        // Appending 0 breaks it; compaction must demote, not re-sort.
        store.insert_rows(id, &[vec![0, 0]]).unwrap();
        store.compact(id).unwrap();
        let p = store.projection(id).unwrap();
        assert_eq!(p.columns[0].sort, SortOrder::None, "demoted");
        assert_eq!(p.num_rows, 1002);
        let rows = logical_rows(&store, id);
        assert_eq!(rows[0][1000..], [10, 0], "stamp order preserved");
    }

    #[test]
    fn crash_between_catalog_swap_and_truncation_is_safe() {
        // Simulate the narrowest crash window by hand: persist a catalog
        // with the bumped epoch, keep the full WAL, reopen. The stale-
        // epoch records must replay as no-ops.
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let (a, b) = demo_data();
        let store = Store::open_disk(Arc::clone(&disk), 64).unwrap();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        store.insert_rows(id, &[vec![10, 0]]).unwrap();
        // Capture the epoch-0 log, compact (which truncates it), then
        // put the old log back — as if the crash hit mid-window.
        let wal_name = "wal_t0.log";
        let wal_len = disk.len(wal_name).unwrap() as usize;
        let old_log = disk.read_at(wal_name, 0, wal_len).unwrap();
        store.compact(id).unwrap();
        disk.create(wal_name).unwrap();
        disk.write_at(wal_name, 0, &old_log).unwrap();
        drop(store);

        let store2 = Store::open_disk(Arc::clone(&disk), 64).unwrap();
        let reports = store2.recovery_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].recovered, 1, "the record still parses");
        assert_eq!(reports[0].applied, 0, "but its epoch is stale");
        let (info, delta) = store2.scan_snapshot(id).unwrap();
        assert_eq!(info.num_rows, 1001, "compacted state, applied once");
        assert!(delta.is_none());
    }

    #[test]
    fn background_compactor_folds_dirty_tables() {
        let store = Store::in_memory();
        let (a, b) = demo_data();
        let id = store.load_projection(&demo_spec(), &[&a, &b]).unwrap();
        let handle = store.spawn_compactor(std::time::Duration::from_millis(5));
        store.insert_rows(id, &[vec![10, 7]]).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !store.dirty_tables().is_empty() {
            assert!(std::time::Instant::now() < deadline, "compactor never ran");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        handle.stop();
        let (info, delta) = store.scan_snapshot(id).unwrap();
        assert_eq!(info.num_rows, 1001);
        assert!(delta.is_none());
    }
}
