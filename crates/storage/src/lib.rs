//! Column-oriented storage engine for matstrat.
//!
//! Faithful to the C-Store layout described in §1.1 of the paper:
//!
//! * each column lives in its own file, a sequence of **64 KB blocks**;
//! * blocks are encoded **uncompressed**, with **run-length encoding**
//!   (RLE), or with **bit-vector encoding**; a dictionary codec is
//!   provided as an extension;
//! * blocks are pulled through a **buffer pool** whose hits/misses feed
//!   both the wall clock and a **simulated-disk meter** that prices seeks
//!   and block reads with the analytical model's constants;
//! * a **catalog** records projections (column sets stored in a common
//!   sort order) and per-column statistics (rows, blocks, min/max,
//!   distinct count, average run length) used by the cost model.
//!
//! All data sources support the two basic C-Store access patterns —
//! reading positions and reading (position, value) pairs — with SARGable
//! predicates pushed into the encoded data.
//!
//! On top of the immutable blocks sits the **write path**: a per-table
//! write-ahead log (the `matstrat-wal` crate), a row-oriented, position-
//! stamped [`delta`] store that scans merge with the blocks, and a
//! compactor that folds deltas back into fresh blocks — see
//! [`store`]'s module docs.

pub mod block;
pub mod catalog;
pub mod delta;
pub mod disk;
pub mod encoding;
pub mod file;
pub mod meter;
pub mod pool;
pub mod store;
pub mod wire;

pub use block::{BitVecBlock, DictBlock, EncodedBlock, PlainBlock, RleBlock, RleRun};
pub use catalog::{Catalog, ColumnInfo, ColumnSpec, ProjectionInfo, ProjectionSpec, SortOrder};
pub use delta::{retain_live, DeltaStore, TableDelta};
pub use disk::{Disk, FileDisk, MemDisk};
pub use encoding::EncodingKind;
pub use file::{BlockIndexEntry, ColumnFileReader, ColumnFileWriter, ColumnStats};
pub use meter::{
    current_query_token, next_query_token, set_thread_query_token, IoMeter, IoSink, IoStats,
};
pub use pool::{default_pool_shards, BufferPool, PoolStats};
pub use store::{ColumnReader, CompactorHandle, RecoveryReport, Store};

/// Size of an on-disk block: 64 KB, as in C-Store.
pub const BLOCK_SIZE: usize = 64 * 1024;
