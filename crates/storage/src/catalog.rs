//! Catalog: projections, columns, and their statistics.
//!
//! A C-Store *projection* is a set of columns from one logical table,
//! all stored in the same sort order (e.g. the paper's lineitem
//! projection sorted by RETURNFLAG, then SHIPDATE, then LINENUM).
//! Because every column of a projection shares the position space,
//! any subset of its columns can be stitched into tuples by position.

use std::collections::HashMap;

use matstrat_common::{ColumnId, Error, Result, TableId, Value, Width};

use crate::encoding::EncodingKind;
use crate::file::ColumnStats;
use crate::wire::{put_u32, put_u64, put_u8, Reader};

/// A column's role in the projection's sort key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// First sort key.
    Primary,
    /// Second sort key.
    Secondary,
    /// Third sort key.
    Tertiary,
    /// Not part of the sort key.
    None,
}

impl SortOrder {
    /// Rank for ordering sort-key columns (None sorts last).
    pub fn rank(self) -> u8 {
        match self {
            SortOrder::Primary => 0,
            SortOrder::Secondary => 1,
            SortOrder::Tertiary => 2,
            SortOrder::None => 3,
        }
    }

    fn tag(self) -> u8 {
        self.rank()
    }

    fn from_tag(t: u8) -> Result<SortOrder> {
        match t {
            0 => Ok(SortOrder::Primary),
            1 => Ok(SortOrder::Secondary),
            2 => Ok(SortOrder::Tertiary),
            3 => Ok(SortOrder::None),
            other => Err(Error::corrupt(format!("bad sort order tag {other}"))),
        }
    }
}

/// Declared layout of one column in a projection to be loaded.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name, unique within the projection.
    pub name: String,
    /// Physical encoding.
    pub encoding: EncodingKind,
    /// Role in the sort key.
    pub sort: SortOrder,
    /// Dict only: encode every block against one column-wide dictionary
    /// of sorted distinct values instead of a per-block first-appearance
    /// dictionary. Sortedness makes range predicates translate to code
    /// ranges, and two columns over the same value domain get identical
    /// dictionaries (equal fingerprints), enabling code-keyed joins.
    pub shared_dict: bool,
}

/// Declared layout of a projection to be loaded.
#[derive(Debug, Clone)]
pub struct ProjectionSpec {
    /// Projection name, unique within the catalog.
    pub name: String,
    /// Column layouts, in schema order.
    pub columns: Vec<ColumnSpec>,
}

impl ProjectionSpec {
    /// Start a spec with no columns.
    pub fn new(name: impl Into<String>) -> ProjectionSpec {
        ProjectionSpec {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Builder-style: append a column.
    pub fn column(
        mut self,
        name: impl Into<String>,
        encoding: EncodingKind,
        sort: SortOrder,
    ) -> ProjectionSpec {
        self.columns.push(ColumnSpec {
            name: name.into(),
            encoding,
            sort,
            shared_dict: false,
        });
        self
    }

    /// Builder-style: append a dict column encoded against a shared
    /// column-wide sorted dictionary (see [`ColumnSpec::shared_dict`]).
    pub fn column_shared_dict(
        mut self,
        name: impl Into<String>,
        sort: SortOrder,
    ) -> ProjectionSpec {
        self.columns.push(ColumnSpec {
            name: name.into(),
            encoding: EncodingKind::Dict,
            sort,
            shared_dict: true,
        });
        self
    }

    /// Indices of the sort-key columns in key order
    /// (primary, secondary, tertiary).
    pub fn sort_key(&self) -> Vec<usize> {
        let mut keyed: Vec<(u8, usize)> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.sort != SortOrder::None)
            .map(|(i, c)| (c.sort.rank(), i))
            .collect();
        keyed.sort();
        keyed.into_iter().map(|(_, i)| i).collect()
    }
}

/// Catalog entry for a loaded column.
#[derive(Debug, Clone)]
pub struct ColumnInfo {
    /// Stable id within the catalog.
    pub id: ColumnId,
    /// Column name.
    pub name: String,
    /// Physical encoding.
    pub encoding: EncodingKind,
    /// Packed width (for `Plain`).
    pub width: Width,
    /// Role in the projection sort key.
    pub sort: SortOrder,
    /// Write-time statistics (`|C|`, `||C||`, min/max/distinct, runs).
    pub stats: ColumnStats,
    /// Backing file name on the disk.
    pub file: String,
    /// Whether every block shares one sorted column-wide dictionary
    /// (see [`ColumnSpec::shared_dict`]). Survives compaction.
    pub shared_dict: bool,
}

impl ColumnInfo {
    /// Whether the column's own values are non-decreasing — true for
    /// the primary sort column, and detectable from `num_runs` vs
    /// `distinct` for others (a sorted column has exactly one run per
    /// distinct value).
    pub fn self_sorted(&self) -> bool {
        self.sort == SortOrder::Primary || self.stats.num_runs == self.stats.distinct
    }
}

/// Catalog entry for a loaded projection.
#[derive(Debug, Clone)]
pub struct ProjectionInfo {
    /// Stable id within the catalog.
    pub id: TableId,
    /// Projection name.
    pub name: String,
    /// Row count (identical across columns).
    pub num_rows: u64,
    /// Columns in schema order.
    pub columns: Vec<ColumnInfo>,
    /// Compaction epoch: bumped each time the projection's immutable
    /// blocks are rewritten. WAL records stamped with an older epoch
    /// are already folded into the blocks and ignored on replay.
    pub wal_epoch: u32,
}

impl ProjectionInfo {
    /// Find a column by name.
    pub fn column_by_name(&self, name: &str) -> Option<(usize, &ColumnInfo)> {
        self.columns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name == name)
    }

    /// The column at schema index `idx`.
    pub fn column(&self, idx: usize) -> Result<&ColumnInfo> {
        self.columns
            .get(idx)
            .ok_or_else(|| Error::invalid(format!("column index {idx} out of range")))
    }
}

/// The set of loaded projections.
#[derive(Debug, Default)]
pub struct Catalog {
    projections: Vec<ProjectionInfo>,
    by_name: HashMap<String, TableId>,
    next_column_id: u32,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a projection; assigns table and column ids.
    pub fn add_projection(
        &mut self,
        name: &str,
        num_rows: u64,
        mut columns: Vec<ColumnInfo>,
    ) -> Result<TableId> {
        if self.by_name.contains_key(name) {
            return Err(Error::invalid(format!("projection {name} already exists")));
        }
        let id = TableId(self.projections.len() as u32);
        for c in &mut columns {
            c.id = ColumnId(self.next_column_id);
            self.next_column_id += 1;
        }
        self.projections.push(ProjectionInfo {
            id,
            name: name.to_string(),
            num_rows,
            columns,
            wal_epoch: 0,
        });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Swap a projection's immutable layout in place (compaction): new
    /// row count and column entries under the same id and name, fresh
    /// column ids, and a bumped WAL epoch. The old entry's files are
    /// left on disk for in-flight readers; the caller invalidates pool
    /// and reader caches.
    pub fn replace_projection(
        &mut self,
        id: TableId,
        num_rows: u64,
        mut columns: Vec<ColumnInfo>,
    ) -> Result<()> {
        let slot = self
            .projections
            .get_mut(id.0 as usize)
            .ok_or_else(|| Error::not_found(format!("{id}")))?;
        if columns.len() != slot.columns.len() {
            return Err(Error::invalid(format!(
                "replace_projection: {} columns for a {}-column projection",
                columns.len(),
                slot.columns.len()
            )));
        }
        for c in &mut columns {
            c.id = ColumnId(self.next_column_id);
            self.next_column_id += 1;
        }
        slot.num_rows = num_rows;
        slot.columns = columns;
        slot.wal_epoch += 1;
        Ok(())
    }

    /// Look up by id.
    pub fn projection(&self, id: TableId) -> Result<&ProjectionInfo> {
        self.projections
            .get(id.0 as usize)
            .ok_or_else(|| Error::not_found(format!("{id}")))
    }

    /// Look up by name.
    pub fn projection_by_name(&self, name: &str) -> Result<&ProjectionInfo> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| Error::not_found(format!("projection {name}")))?;
        self.projection(*id)
    }

    /// All projections.
    pub fn projections(&self) -> &[ProjectionInfo] {
        &self.projections
    }

    /// Serialize the catalog for persistence.
    pub fn serialize(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MSCT");
        // Version history: 2 added per-projection wal_epoch, 3 added a
        // per-column flags byte (bit 0 = shared dictionary).
        put_u32(&mut buf, 3);
        put_u32(&mut buf, self.projections.len() as u32);
        put_u32(&mut buf, self.next_column_id);
        for p in &self.projections {
            put_str(&mut buf, &p.name);
            put_u64(&mut buf, p.num_rows);
            put_u32(&mut buf, p.wal_epoch);
            put_u32(&mut buf, p.columns.len() as u32);
            for c in &p.columns {
                put_str(&mut buf, &c.name);
                put_u32(&mut buf, c.id.0);
                put_u8(&mut buf, c.encoding.tag());
                put_u8(&mut buf, c.width.bytes() as u8);
                put_u8(&mut buf, c.sort.tag());
                put_u8(&mut buf, u8::from(c.shared_dict));
                put_str(&mut buf, &c.file);
                put_u64(&mut buf, c.stats.num_rows);
                put_u64(&mut buf, c.stats.num_blocks);
                buf.extend_from_slice(&c.stats.min.to_le_bytes());
                buf.extend_from_slice(&c.stats.max.to_le_bytes());
                put_u64(&mut buf, c.stats.distinct);
                put_u64(&mut buf, c.stats.num_runs);
            }
        }
        buf
    }

    /// Parse a serialized catalog.
    pub fn parse(bytes: &[u8]) -> Result<Catalog> {
        let mut r = Reader::new(bytes);
        if r.bytes(4)? != b"MSCT" {
            return Err(Error::corrupt("catalog: bad magic"));
        }
        let version = r.u32()?;
        if !(1..=3).contains(&version) {
            return Err(Error::corrupt(format!(
                "catalog: unknown version {version}"
            )));
        }
        let nproj = r.u32()?;
        let next_column_id = r.u32()?;
        let mut cat = Catalog {
            next_column_id,
            ..Catalog::default()
        };
        for pi in 0..nproj {
            let name = get_str(&mut r)?;
            let num_rows = r.u64()?;
            // Version 1 predates the write path: no epoch, nothing in a WAL.
            let wal_epoch = if version >= 2 { r.u32()? } else { 0 };
            let ncols = r.u32()?;
            let mut columns = Vec::with_capacity(ncols as usize);
            for _ in 0..ncols {
                let cname = get_str(&mut r)?;
                let id = ColumnId(r.u32()?);
                let encoding = EncodingKind::from_tag(r.u8()?)?;
                let width = match r.u8()? {
                    1 => Width::W1,
                    2 => Width::W2,
                    4 => Width::W4,
                    8 => Width::W8,
                    w => return Err(Error::corrupt(format!("catalog: bad width {w}"))),
                };
                let sort = SortOrder::from_tag(r.u8()?)?;
                // Versions 1–2 predate per-column flags.
                let flags = if version >= 3 { r.u8()? } else { 0 };
                let file = get_str(&mut r)?;
                let stats = ColumnStats {
                    num_rows: r.u64()?,
                    num_blocks: r.u64()?,
                    min: r.i64()?,
                    max: r.i64()?,
                    distinct: r.u64()?,
                    num_runs: r.u64()?,
                };
                columns.push(ColumnInfo {
                    id,
                    name: cname,
                    encoding,
                    width,
                    sort,
                    stats,
                    file,
                    shared_dict: flags & 1 != 0,
                });
            }
            cat.projections.push(ProjectionInfo {
                id: TableId(pi),
                name: name.clone(),
                num_rows,
                columns,
                wal_epoch,
            });
            cat.by_name.insert(name, TableId(pi));
        }
        Ok(cat)
    }
}

/// Check that `columns` (sort-key columns in key order) are sorted
/// lexicographically, as a projection requires.
pub fn verify_sort_order(sort_cols: &[&[Value]]) -> Result<()> {
    if sort_cols.is_empty() {
        return Ok(());
    }
    let n = sort_cols[0].len();
    for row in 1..n {
        let mut ordered = false;
        for col in sort_cols {
            match col[row - 1].cmp(&col[row]) {
                std::cmp::Ordering::Less => {
                    ordered = true;
                    break;
                }
                std::cmp::Ordering::Greater => {
                    return Err(Error::invalid(format!(
                        "projection data not sorted at row {row}"
                    )));
                }
                std::cmp::Ordering::Equal => continue,
            }
        }
        let _ = ordered;
    }
    Ok(())
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut Reader<'_>) -> Result<String> {
    let len = r.u32()? as usize;
    let bytes = r.bytes(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::corrupt("invalid utf8 in catalog"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ColumnStats {
        ColumnStats {
            num_rows: 10,
            num_blocks: 1,
            min: 0,
            max: 9,
            distinct: 10,
            num_runs: 10,
        }
    }

    fn col(name: &str, sort: SortOrder) -> ColumnInfo {
        ColumnInfo {
            id: ColumnId(0),
            name: name.into(),
            encoding: EncodingKind::Rle,
            width: Width::W4,
            sort,
            stats: stats(),
            file: format!("{name}.col"),
            shared_dict: false,
        }
    }

    #[test]
    fn spec_builder_and_sort_key() {
        let spec = ProjectionSpec::new("lineitem")
            .column("retflag", EncodingKind::Rle, SortOrder::Primary)
            .column("shipdate", EncodingKind::Rle, SortOrder::Secondary)
            .column("linenum", EncodingKind::Plain, SortOrder::Tertiary)
            .column("quantity", EncodingKind::Plain, SortOrder::None);
        assert_eq!(spec.sort_key(), vec![0, 1, 2]);
    }

    #[test]
    fn add_and_lookup() {
        let mut cat = Catalog::new();
        let id = cat
            .add_projection("t", 10, vec![col("a", SortOrder::Primary)])
            .unwrap();
        assert_eq!(cat.projection(id).unwrap().name, "t");
        assert_eq!(cat.projection_by_name("t").unwrap().id, id);
        assert!(cat.projection_by_name("missing").is_err());
        assert!(cat.add_projection("t", 5, vec![]).is_err());
    }

    #[test]
    fn column_ids_are_unique_across_projections() {
        let mut cat = Catalog::new();
        cat.add_projection(
            "a",
            1,
            vec![col("x", SortOrder::None), col("y", SortOrder::None)],
        )
        .unwrap();
        cat.add_projection("b", 1, vec![col("z", SortOrder::None)])
            .unwrap();
        let a = cat.projection_by_name("a").unwrap();
        let b = cat.projection_by_name("b").unwrap();
        assert_eq!(a.columns[0].id, ColumnId(0));
        assert_eq!(a.columns[1].id, ColumnId(1));
        assert_eq!(b.columns[0].id, ColumnId(2));
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let mut cat = Catalog::new();
        cat.add_projection(
            "lineitem",
            10,
            vec![
                col("retflag", SortOrder::Primary),
                col("shipdate", SortOrder::Secondary),
            ],
        )
        .unwrap();
        let bytes = cat.serialize();
        let back = Catalog::parse(&bytes).unwrap();
        let p = back.projection_by_name("lineitem").unwrap();
        assert_eq!(p.num_rows, 10);
        assert_eq!(p.columns.len(), 2);
        assert_eq!(p.columns[1].name, "shipdate");
        assert_eq!(p.columns[1].sort, SortOrder::Secondary);
        assert_eq!(p.columns[0].stats, stats());
    }

    #[test]
    fn replace_projection_bumps_epoch_and_keeps_identity() {
        let mut cat = Catalog::new();
        let id = cat
            .add_projection("t", 10, vec![col("a", SortOrder::Primary)])
            .unwrap();
        assert_eq!(cat.projection(id).unwrap().wal_epoch, 0);
        cat.replace_projection(id, 13, vec![col("a", SortOrder::None)])
            .unwrap();
        let p = cat.projection(id).unwrap();
        assert_eq!((p.id, p.name.as_str()), (id, "t"));
        assert_eq!(p.num_rows, 13);
        assert_eq!(p.wal_epoch, 1);
        // Fresh column ids, so stale reader caches can never alias.
        assert_eq!(p.columns[0].id, ColumnId(1));
        // Epoch survives a persistence roundtrip.
        let back = Catalog::parse(&cat.serialize()).unwrap();
        assert_eq!(back.projection(id).unwrap().wal_epoch, 1);
        // Wrong arity is rejected.
        assert!(cat.replace_projection(id, 1, vec![]).is_err());
    }

    #[test]
    fn parse_accepts_version_1_with_epoch_zero() {
        let mut cat = Catalog::new();
        cat.add_projection("t", 10, vec![col("a", SortOrder::Primary)])
            .unwrap();
        let mut bytes = cat.serialize();
        // Rewrite the header version to 1 and splice out the fields v1
        // lacks: the per-column flags byte (after name/id/enc/width/sort
        // of column "a") first, then the 4-byte epoch (right after the
        // projection name + row count) so the earlier offset stays valid.
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let epoch_at = 4 + 4 + 4 + 4 + (4 + 1) + 8;
        let flags_at = epoch_at + 4 + 4 + (4 + 1) + 4 + 1 + 1 + 1;
        bytes.drain(flags_at..flags_at + 1);
        bytes.drain(epoch_at..epoch_at + 4);
        let back = Catalog::parse(&bytes).unwrap();
        let p = back.projection_by_name("t").unwrap();
        assert_eq!(p.wal_epoch, 0);
        assert!(!p.columns[0].shared_dict);
    }

    #[test]
    fn shared_dict_flag_survives_roundtrip() {
        let mut cat = Catalog::new();
        let mut shared = col("k", SortOrder::None);
        shared.encoding = EncodingKind::Dict;
        shared.shared_dict = true;
        cat.add_projection("t", 10, vec![shared, col("v", SortOrder::None)])
            .unwrap();
        let back = Catalog::parse(&cat.serialize()).unwrap();
        let p = back.projection_by_name("t").unwrap();
        assert!(p.columns[0].shared_dict);
        assert!(!p.columns[1].shared_dict);
    }

    #[test]
    fn spec_builder_shared_dict_column() {
        let spec = ProjectionSpec::new("t")
            .column("a", EncodingKind::Rle, SortOrder::Primary)
            .column_shared_dict("k", SortOrder::None);
        assert!(!spec.columns[0].shared_dict);
        assert!(spec.columns[1].shared_dict);
        assert_eq!(spec.columns[1].encoding, EncodingKind::Dict);
    }

    #[test]
    fn verify_sort_order_accepts_lexicographic() {
        let a = vec![1, 1, 1, 2, 2];
        let b = vec![1, 2, 2, 1, 3];
        verify_sort_order(&[&a, &b]).unwrap();
    }

    #[test]
    fn verify_sort_order_rejects_violation() {
        let a = vec![1, 1, 2, 1];
        assert!(verify_sort_order(&[&a]).is_err());
        let p = vec![1, 1, 1];
        let s = vec![2, 1, 3];
        assert!(verify_sort_order(&[&p, &s]).is_err());
    }

    #[test]
    fn self_sorted_detection() {
        let mut c = col("x", SortOrder::None);
        // 10 runs, 10 distinct → sorted
        assert!(c.self_sorted());
        c.stats.num_runs = 20;
        assert!(!c.self_sorted());
        c.sort = SortOrder::Primary;
        assert!(c.self_sorted());
    }

    #[test]
    fn column_by_name_and_index() {
        let mut cat = Catalog::new();
        let id = cat
            .add_projection(
                "t",
                1,
                vec![col("a", SortOrder::None), col("b", SortOrder::None)],
            )
            .unwrap();
        let p = cat.projection(id).unwrap();
        assert_eq!(p.column_by_name("b").unwrap().0, 1);
        assert!(p.column_by_name("c").is_none());
        assert!(p.column(1).is_ok());
        assert!(p.column(2).is_err());
    }
}
