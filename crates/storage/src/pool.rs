//! Buffer pool: a capacity-bounded LRU cache of parsed blocks.
//!
//! Parsed blocks stay in their compressed form ([`EncodedBlock`]), so the
//! pool is the in-memory home of the paper's mini-columns: a multi-column
//! holds `Arc`s to pooled blocks, which is the "essentially just a pointer
//! to the page in the buffer pool" of §3.6. Handing out `Arc`s also means
//! eviction never invalidates an operator's data — no pinning protocol is
//! needed.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::EncodedBlock;

/// Number of single-flight stripes guarding concurrent cold fills.
const FLIGHT_STRIPES: usize = 64;

/// Cache key: (column file name, block index within the file).
pub type BlockKey = (String, u32);

/// Hit/miss counters for one pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Lookups satisfied from the pool.
    pub hits: u64,
    /// Lookups that had to go to disk.
    pub misses: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
}

impl PoolStats {
    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    block: Arc<EncodedBlock>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct PoolInner {
    entries: HashMap<BlockKey, Entry>,
    tick: u64,
    stats: PoolStats,
}

/// An LRU cache of `Arc<EncodedBlock>` bounded by block count.
///
/// Capacity is in blocks (each ≤ 64 KB), so `capacity = 16384` ≈ 1 GB —
/// the knob used to emulate the paper's `F` (fraction of a column already
/// resident).
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
    /// Single-flight stripes: a cold fill holds its key's stripe for the
    /// duration of the disk read, so concurrent misses on one block do one
    /// read and charge one `block_read` — parallel cold runs keep the
    /// exact counters of a serial run.
    flight: Vec<Mutex<()>>,
}

impl BufferPool {
    /// Pool holding at most `capacity` blocks (minimum 1).
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            capacity: capacity.max(1),
            inner: Mutex::new(PoolInner::default()),
            flight: std::iter::repeat_with(|| Mutex::new(()))
                .take(FLIGHT_STRIPES)
                .collect(),
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a block, refreshing its recency on hit.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<EncodedBlock>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                let b = Arc::clone(&e.block);
                inner.stats.hits += 1;
                Some(b)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Refresh recency and return the block if cached, without touching
    /// the hit/miss counters.
    fn touch(&self, key: &BlockKey) -> Option<Arc<EncodedBlock>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.block)
        })
    }

    fn record_lookup(&self, hit: bool) {
        let mut inner = self.inner.lock();
        if hit {
            inner.stats.hits += 1;
        } else {
            inner.stats.misses += 1;
        }
    }

    fn stripe(&self, key: &BlockKey) -> &Mutex<()> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.flight[h.finish() as usize % self.flight.len()]
    }

    /// Look up `key`, filling it with `fill` on a miss. Concurrent callers
    /// of the same key are single-flighted: exactly one runs `fill`, the
    /// rest wait on the key's stripe and are served from the pool. Each
    /// call counts exactly one hit (served from cache) or miss (`fill`
    /// ran, or was attempted and failed).
    pub fn get_or_insert_with<E>(
        &self,
        key: &BlockKey,
        fill: impl FnOnce() -> std::result::Result<Arc<EncodedBlock>, E>,
    ) -> std::result::Result<Arc<EncodedBlock>, E> {
        if let Some(b) = self.touch(key) {
            self.record_lookup(true);
            return Ok(b);
        }
        let _inflight = self.stripe(key).lock();
        if let Some(b) = self.touch(key) {
            // Another caller filled it while we waited on the stripe.
            self.record_lookup(true);
            return Ok(b);
        }
        self.record_lookup(false);
        let block = fill()?;
        self.insert(key.clone(), Arc::clone(&block));
        Ok(block)
    }

    /// Insert a block, evicting the least-recently-used entry if full.
    pub fn insert(&self, key: BlockKey, block: Arc<EncodedBlock>) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            // Evict the LRU entry. Linear scan: eviction is rare relative
            // to lookups and pools are sized in thousands of blocks.
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.entries.insert(
            key,
            Entry {
                block,
                last_used: tick,
            },
        );
    }

    /// How many blocks of `file` are currently resident — the numerator of
    /// the model's `F` for that column.
    pub fn resident_blocks(&self, file: &str) -> usize {
        self.inner
            .lock()
            .entries
            .keys()
            .filter(|(f, _)| f == file)
            .count()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Drop all cached blocks and zero the counters (a "cold cache" reset
    /// for benchmarks).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.stats = PoolStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PlainBlock;
    use matstrat_common::Width;

    fn block(start: u64) -> Arc<EncodedBlock> {
        Arc::new(EncodedBlock::Plain(PlainBlock::from_values(
            start,
            Width::W1,
            &[1, 2, 3],
        )))
    }

    fn key(i: u32) -> BlockKey {
        ("f.col".to_string(), i)
    }

    #[test]
    fn hit_and_miss_counters() {
        let pool = BufferPool::new(4);
        assert!(pool.get(&key(0)).is_none());
        pool.insert(key(0), block(0));
        assert!(pool.get(&key(0)).is_some());
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let pool = BufferPool::new(2);
        pool.insert(key(0), block(0));
        pool.insert(key(1), block(1));
        // Touch 0 so 1 becomes LRU.
        pool.get(&key(0));
        pool.insert(key(2), block(2));
        assert!(pool.get(&key(0)).is_some());
        assert!(pool.get(&key(1)).is_none(), "LRU entry should be evicted");
        assert!(pool.get(&key(2)).is_some());
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let pool = BufferPool::new(2);
        pool.insert(key(0), block(0));
        pool.insert(key(1), block(1));
        pool.insert(key(0), block(0)); // same key: no eviction needed
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().evictions, 0);
    }

    #[test]
    fn resident_blocks_per_file() {
        let pool = BufferPool::new(8);
        pool.insert(("a".into(), 0), block(0));
        pool.insert(("a".into(), 1), block(0));
        pool.insert(("b".into(), 0), block(0));
        assert_eq!(pool.resident_blocks("a"), 2);
        assert_eq!(pool.resident_blocks("b"), 1);
        assert_eq!(pool.resident_blocks("c"), 0);
    }

    #[test]
    fn arc_survives_eviction() {
        let pool = BufferPool::new(1);
        let b = block(7);
        pool.insert(key(0), Arc::clone(&b));
        let held = pool.get(&key(0)).unwrap();
        pool.insert(key(1), block(8)); // evicts key(0)
        assert!(pool.get(&key(0)).is_none());
        // The operator's Arc is still valid.
        assert_eq!(held.start_pos(), 7);
    }

    #[test]
    fn clear_resets_everything() {
        let pool = BufferPool::new(4);
        pool.insert(key(0), block(0));
        pool.get(&key(0));
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn get_or_insert_counts_one_lookup_per_call() {
        let pool = BufferPool::new(4);
        let b: Result<_, ()> = pool.get_or_insert_with(&key(0), || Ok(block(0)));
        assert!(b.is_ok());
        let b: Result<_, ()> = pool.get_or_insert_with(&key(0), || panic!("must not refill"));
        assert!(b.is_ok());
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn get_or_insert_failed_fill_counts_miss_and_caches_nothing() {
        let pool = BufferPool::new(4);
        let r = pool.get_or_insert_with(&key(0), || Err("disk gone"));
        assert_eq!(r.unwrap_err(), "disk gone");
        assert_eq!(pool.stats().misses, 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn concurrent_misses_single_flight() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = BufferPool::new(8);
        let fills = AtomicUsize::new(0);
        const THREADS: usize = 8;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let b: Result<_, ()> = pool.get_or_insert_with(&key(7), || {
                        fills.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window: everyone else must wait on
                        // the stripe, not refill.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(block(7))
                    });
                    assert_eq!(b.unwrap().start_pos(), 7);
                });
            }
        });
        assert_eq!(fills.load(Ordering::SeqCst), 1, "exactly one fill");
        let s = pool.stats();
        assert_eq!(s.misses, 1, "one counted miss for one disk read");
        assert_eq!(s.hits as usize, THREADS - 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let pool = BufferPool::new(0);
        assert_eq!(pool.capacity(), 1);
        pool.insert(key(0), block(0));
        assert_eq!(pool.len(), 1);
    }
}
