//! Buffer pool: a capacity-bounded LRU cache of parsed blocks, striped
//! into independently locked shards.
//!
//! Parsed blocks stay in their compressed form ([`EncodedBlock`]), so the
//! pool is the in-memory home of the paper's mini-columns: a multi-column
//! holds `Arc`s to pooled blocks, which is the "essentially just a pointer
//! to the page in the buffer pool" of §3.6. Handing out `Arc`s also means
//! eviction never invalidates an operator's data — no pinning protocol is
//! needed.
//!
//! # Sharding
//!
//! A single LRU mutex serializes every block lookup once the
//! granule-parallel executor and the parallel join probe put eight-plus
//! workers on the pool at once. The pool therefore stripes by block key:
//! each shard owns its own entry map, LRU clock, single-flight stripes,
//! and share of the capacity, so lookups of different blocks proceed in
//! parallel and only true same-block races synchronize. The striping is
//! invisible from outside:
//!
//! * a key maps to exactly one shard, so every lookup is still exactly
//!   one hit or one miss and [`PoolStats`] — summed over shards — stays
//!   **globally exact** at any worker count;
//! * per-shard capacities sum to the requested capacity, so the global
//!   bound holds at every moment;
//! * `MATSTRAT_POOL_SHARDS=1` collapses to the previous single-LRU pool,
//!   byte-for-byte (the CI degenerate leg).
//!
//! Eviction is LRU *within a shard*. Shard count is capped by capacity so
//! every shard owns at least one block.
//!
//! # Runtime re-sharding
//!
//! The stripe count is chosen at construction, but it is no longer
//! frozen: [`BufferPool::reshard`] rehashes every cached entry into a new
//! stripe count **in place**, so a `Database::set_parallelism` call that
//! outgrows the construction-time striping widens the pool instead of
//! merely warning. Re-sharding preserves the pool exactly:
//!
//! * the cached block set survives (each entry rehashes to its new home
//!   stripe), with per-stripe LRU order carried over — entries re-insert
//!   in ascending recency, so a stripe's eviction order after the move
//!   matches the relative recency the entries had before it;
//! * the summed `hits`/`misses`/`evictions` counters are preserved
//!   **exactly** (they carry into the new stripes), so long-running stats
//!   consumers see a monotone history across the transition — the only
//!   way `evictions` moves during a reshard is when rehashing genuinely
//!   overflows one new stripe's capacity share, and then every overflow
//!   eviction is counted like any other;
//! * the global capacity bound holds at every moment — per-stripe
//!   capacities of the new layout sum to the same total, and overflowing
//!   stripes evict down during the move.
//!
//! Lookups synchronize with a reshard through a readers-writer lock on
//! the stripe vector: steady-state lookups take the (uncontended) read
//! side, a reshard takes the write side for the duration of the rehash.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::block::EncodedBlock;

/// Number of single-flight stripes guarding concurrent cold fills, per
/// shard — kept at the pre-sharding pool's stripe count so even a
/// single-shard pool serializes concurrent fills of *distinct* blocks
/// no more often than it ever did.
const FLIGHT_STRIPES: usize = 64;

/// Cache key: (column file name, block index within the file).
pub type BlockKey = (String, u32);

/// The shard-count default: `MATSTRAT_POOL_SHARDS` when set (`0` means
/// "all available cores"), otherwise the `MATSTRAT_THREADS` worker
/// default. Tying the fallback to the thread knob keeps the paper's
/// serial configuration (threads unset → 1 worker → 1 shard) on the
/// exact single-LRU eviction behavior of the pre-sharding pool — shard
/// count only grows when workers exist to contend — while
/// `MATSTRAT_POOL_SHARDS` still pins it independently (CI's `=1` leg
/// proves the degenerate equivalence under 4 workers). Read once per
/// process.
pub fn default_pool_shards() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        matstrat_common::env_worker_count(
            "MATSTRAT_POOL_SHARDS",
            matstrat_common::default_parallelism(),
        )
    })
}

/// Hit/miss counters for one pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Lookups satisfied from the pool.
    pub hits: u64,
    /// Lookups that had to go to disk.
    pub misses: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Stripe count of the pool this snapshot came from. Not a counter:
    /// it lets stats consumers (the nightly soak, `Database`'s
    /// undersharding check) see how finely the pool is striped right
    /// now — [`BufferPool::reshard`] can change it at runtime (e.g. when
    /// `Database::set_parallelism` outgrows the construction-time stripe
    /// count), capped by the pool capacity.
    pub shards: u64,
}

impl PoolStats {
    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for PoolStats {
    fn add_assign(&mut self, rhs: PoolStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.evictions += rhs.evictions;
        // Not a counter: merged snapshots describe the widest pool seen.
        self.shards = self.shards.max(rhs.shards);
    }
}

#[derive(Debug)]
struct Entry {
    block: Arc<EncodedBlock>,
    last_used: u64,
    /// Query token of the fill that brought this block in (0 =
    /// untracked work: loads, direct inserts, maintenance). Lets a
    /// single-flight waiter tell whether the fill it waited on belonged
    /// to its own query or to a stranger whose read it must be credited
    /// for (see [`BufferPool::get_or_insert_with_owner`]).
    filled_by: u64,
}

#[derive(Debug, Default)]
struct ShardInner {
    entries: HashMap<BlockKey, Entry>,
    tick: u64,
    stats: PoolStats,
}

/// One stripe of the pool: its own LRU, counters, and single-flight
/// locks. Lock order within a shard is flight stripe → inner mutex,
/// never the reverse; shards never lock each other.
#[derive(Debug)]
struct Shard {
    capacity: usize,
    inner: Mutex<ShardInner>,
    /// Single-flight stripes: a cold fill holds its key's stripe for the
    /// duration of the disk read, so concurrent misses on one block do one
    /// read and charge one `block_read` — parallel cold runs keep the
    /// exact counters of a serial run.
    flight: Vec<Mutex<()>>,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            capacity,
            inner: Mutex::new(ShardInner::default()),
            flight: std::iter::repeat_with(|| Mutex::new(()))
                .take(FLIGHT_STRIPES)
                .collect(),
        }
    }

    /// Look up `key` in one critical section: refresh recency and count
    /// the hit; on absence count a miss only when `count_miss` is set.
    /// The single-flight path defers its miss — a first probe that turns
    /// into a hit after the stripe wait is one hit, not a miss plus a
    /// hit.
    fn find(&self, key: &BlockKey, count_miss: bool) -> Option<(Arc<EncodedBlock>, u64)> {
        let inner = &mut *self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                let b = Arc::clone(&e.block);
                let filled_by = e.filled_by;
                inner.stats.hits += 1;
                Some((b, filled_by))
            }
            None => {
                if count_miss {
                    inner.stats.misses += 1;
                }
                None
            }
        }
    }

    fn record_miss(&self) {
        self.inner.lock().stats.misses += 1;
    }

    fn insert(&self, key: BlockKey, block: Arc<EncodedBlock>, filled_by: u64) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= self.capacity {
            // Evict the LRU entry. Linear scan: eviction is rare relative
            // to lookups and pools are sized in thousands of blocks.
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
                inner.stats.evictions += 1;
            }
        }
        inner.entries.insert(
            key,
            Entry {
                block,
                last_used: tick,
                filled_by,
            },
        );
    }
}

/// A sharded LRU cache of `Arc<EncodedBlock>` bounded by block count.
///
/// Capacity is in blocks (each ≤ 64 KB), so `capacity = 16384` ≈ 1 GB —
/// the knob used to emulate the paper's `F` (fraction of a column already
/// resident). [`BufferPool::new`] stripes over the `MATSTRAT_POOL_SHARDS`
/// default; [`BufferPool::with_shards`] pins the shard count (1 restores
/// the single global LRU).
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    shards: RwLock<Vec<Shard>>,
}

/// Build `shards` stripes whose capacities sum to `capacity` (the first
/// `capacity % shards` stripes take the remainder, one block each).
fn make_shards(capacity: usize, shards: usize) -> Vec<Shard> {
    let per = capacity / shards;
    let rem = capacity % shards;
    (0..shards)
        .map(|s| Shard::new(per + usize::from(s < rem)))
        .collect()
}

impl BufferPool {
    /// Pool holding at most `capacity` blocks (minimum 1), striped over
    /// the process-default shard count.
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool::with_shards(capacity, default_pool_shards())
    }

    /// Pool holding at most `capacity` blocks over exactly `shards`
    /// stripes (both clamped to ≥ 1; shards additionally capped by the
    /// capacity so every shard owns at least one block). Per-shard
    /// capacities sum to `capacity`.
    pub fn with_shards(capacity: usize, shards: usize) -> BufferPool {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        BufferPool {
            capacity,
            shards: RwLock::new(make_shards(capacity, shards)),
        }
    }

    /// Total capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.read().len()
    }

    /// Number of blocks currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .read()
            .iter()
            .map(|s| s.inner.lock().entries.len())
            .sum()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stripe index `key` lives in under an `n`-stripe layout, plus
    /// the full hash (whose high bits pick the single-flight stripe).
    fn shard_index(key: &BlockKey, n: usize) -> (usize, u64) {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        let hash = h.finish();
        (hash as usize % n, hash)
    }

    /// Look up a block, refreshing its recency on hit.
    pub fn get(&self, key: &BlockKey) -> Option<Arc<EncodedBlock>> {
        let shards = self.shards.read();
        let (i, _) = Self::shard_index(key, shards.len());
        shards[i].find(key, true).map(|(b, _)| b)
    }

    /// Look up `key`, filling it with `fill` on a miss. Concurrent callers
    /// of the same key are single-flighted: exactly one runs `fill`, the
    /// rest wait on the key's stripe and are served from the pool. Each
    /// call counts exactly one hit (served from cache) or miss (`fill`
    /// ran, or was attempted and failed). The stripe layout is pinned for
    /// the duration of the call (read side of the reshard lock), so a
    /// concurrent [`Self::reshard`] waits for in-flight fills and never
    /// strands one between layouts. That wait is deliberate: completing
    /// a fill against a detached layout would drop its entry and its
    /// miss from the ledger, breaking the exact-counter guarantee the
    /// reshard promises — the cost is that a queued reshard (rare,
    /// explicit `set_parallelism` only) briefly stalls lookups behind
    /// the slowest in-flight fill; steady-state readers only share an
    /// uncontended read word.
    pub fn get_or_insert_with<E>(
        &self,
        key: &BlockKey,
        fill: impl FnOnce() -> std::result::Result<Arc<EncodedBlock>, E>,
    ) -> std::result::Result<Arc<EncodedBlock>, E> {
        self.get_or_insert_with_owner(key, 0, fill).map(|(b, _)| b)
    }

    /// [`Self::get_or_insert_with`] with cold-read *attribution*: `token`
    /// identifies the calling query (0 = untracked), a fill stamps the
    /// entry with the filler's token, and the returned flag reports
    /// whether this call **waited on another query's in-flight fill** —
    /// it missed, queued on the single-flight stripe, and was then served
    /// by an entry stamped with a different token. Such a caller did all
    /// the work of a cold read except the disk transfer itself (the
    /// single-flight dedup handed it a stranger's result), so per-query
    /// accounting must credit it one `block_read` or its cold count comes
    /// out below what the same query does when run alone. Waiting on a
    /// *sibling* thread of the same query returns `false`: the query
    /// already recorded that read once, exactly as its serial oracle
    /// would. Plain hits and own fills return `false`.
    pub fn get_or_insert_with_owner<E>(
        &self,
        key: &BlockKey,
        token: u64,
        fill: impl FnOnce() -> std::result::Result<Arc<EncodedBlock>, E>,
    ) -> std::result::Result<(Arc<EncodedBlock>, bool), E> {
        let shards = self.shards.read();
        let (i, hash) = Self::shard_index(key, shards.len());
        let shard = &shards[i];
        if let Some((b, _)) = shard.find(key, false) {
            return Ok((b, false));
        }
        // The shard index consumed the low hash bits; pick the flight
        // stripe from the high bits so one shard's keys still spread over
        // its stripes.
        let _inflight = shard.flight[(hash >> 32) as usize % shard.flight.len()].lock();
        if let Some((b, filled_by)) = shard.find(key, false) {
            // Another caller filled it while we waited on the stripe.
            return Ok((b, filled_by != token));
        }
        shard.record_miss();
        let block = fill()?;
        shard.insert(key.clone(), Arc::clone(&block), token);
        Ok((block, false))
    }

    /// Insert a block, evicting the shard's least-recently-used entry if
    /// the shard is full.
    pub fn insert(&self, key: BlockKey, block: Arc<EncodedBlock>) {
        let shards = self.shards.read();
        let (i, _) = Self::shard_index(&key, shards.len());
        shards[i].insert(key, block, 0);
    }

    /// Drop every cached block of `file`, returning how many were
    /// dropped. Compaction calls this after swapping a projection to new
    /// column files: the old entries can never be looked up again (block
    /// keys embed the versioned file name), so leaving them resident
    /// would squat on pool capacity until LRU churn clears them.
    /// Counters are untouched — the history of hits and misses happened.
    pub fn invalidate_file(&self, file: &str) -> usize {
        let shards = self.shards.read();
        let mut dropped = 0;
        for s in shards.iter() {
            let mut inner = s.inner.lock();
            let before = inner.entries.len();
            inner.entries.retain(|(f, _), _| f != file);
            dropped += before - inner.entries.len();
        }
        dropped
    }

    /// Re-stripe the pool to `shards` stripes **in place** (clamped to
    /// `[1, capacity]`), rehashing every cached entry into its new home
    /// stripe. A no-op when the pool already has that many stripes.
    ///
    /// The summed [`PoolStats`] counters are preserved exactly: the
    /// hit/miss/eviction history carries into the new layout (parked in
    /// the first stripe; [`Self::stats`] only ever reports the sum).
    /// Entries re-insert in ascending recency with per-stripe ticks
    /// rebuilt, so each new stripe's LRU order reflects the entries'
    /// relative recency from before the move. If rehashing overflows a
    /// new stripe's capacity share, the overflow evicts oldest-first and
    /// is counted in `evictions` — the capacity bound holds at every
    /// moment, through the reshard included.
    pub fn reshard(&self, shards: usize) {
        let new_n = shards.clamp(1, self.capacity);
        let mut guard = self.shards.write();
        if guard.len() == new_n {
            return;
        }
        Self::rehash_into(&mut guard, self.capacity, new_n);
    }

    /// Widen the pool to at least `shards` stripes (clamped to
    /// `[1, capacity]`); never narrows. The grow-or-not decision is made
    /// **under the stripe write lock**, so two sessions racing this call
    /// (e.g. concurrent `set_parallelism`) serialize: the pool ends at
    /// the widest request and the summed [`PoolStats`] counters are
    /// preserved exactly, same as [`Self::reshard`]. A check-then-act at
    /// the caller (`if n > pool.num_shards() { pool.reshard(n) }`) is
    /// racy — a stale read lets the smaller request re-shard *after* the
    /// larger one, shrinking the pool; this entry point closes that gap.
    pub fn reshard_at_least(&self, shards: usize) {
        let new_n = shards.clamp(1, self.capacity);
        let mut guard = self.shards.write();
        if guard.len() >= new_n {
            return;
        }
        Self::rehash_into(&mut guard, self.capacity, new_n);
    }

    /// Rebuild `guard` as `new_n` stripes, carrying counters and entries
    /// over exactly. Callers hold the write lock and have already decided
    /// the move is real (`guard.len() != new_n`).
    fn rehash_into(guard: &mut Vec<Shard>, capacity: usize, new_n: usize) {
        // Drain the old stripes: summed counters plus every entry tagged
        // with its pre-move recency (per-stripe tick, then stripe index —
        // deterministic, and order within a stripe is its real LRU order).
        let mut total = PoolStats::default();
        let mut entries: Vec<(u64, usize, BlockKey, Arc<EncodedBlock>, u64)> = Vec::new();
        for (si, s) in guard.iter_mut().enumerate() {
            let inner = s.inner.get_mut();
            total += inner.stats;
            for (key, e) in inner.entries.drain() {
                entries.push((e.last_used, si, key, e.block, e.filled_by));
            }
        }
        entries.sort_unstable_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));

        let mut new_shards = make_shards(capacity, new_n);
        new_shards[0].inner.get_mut().stats = total;
        for (_, _, key, block, filled_by) in entries {
            let (i, _) = Self::shard_index(&key, new_n);
            // Ascending recency: on overflow the stripe evicts its oldest
            // entry, exactly as a live insert would.
            new_shards[i].insert(key, block, filled_by);
        }
        *guard = new_shards;
    }

    /// How many blocks of `file` are currently resident — the numerator of
    /// the model's `F` for that column.
    pub fn resident_blocks(&self, file: &str) -> usize {
        self.shards
            .read()
            .iter()
            .map(|s| {
                s.inner
                    .lock()
                    .entries
                    .keys()
                    .filter(|(f, _)| f == file)
                    .count()
            })
            .sum()
    }

    /// Counter snapshot, summed over shards — exact: every lookup lands
    /// in exactly one shard and counts exactly one hit or miss there.
    /// The snapshot also reports the pool's stripe count (`shards`).
    pub fn stats(&self) -> PoolStats {
        let shards = self.shards.read();
        let mut total = PoolStats::default();
        for s in shards.iter() {
            total += s.inner.lock().stats;
        }
        total.shards = shards.len() as u64;
        total
    }

    /// Drop all cached blocks and zero the counters (a "cold cache" reset
    /// for benchmarks).
    pub fn clear(&self) {
        for s in self.shards.read().iter() {
            let mut inner = s.inner.lock();
            inner.entries.clear();
            inner.stats = PoolStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::PlainBlock;
    use matstrat_common::Width;

    fn block(start: u64) -> Arc<EncodedBlock> {
        Arc::new(EncodedBlock::Plain(PlainBlock::from_values(
            start,
            Width::W1,
            &[1, 2, 3],
        )))
    }

    fn key(i: u32) -> BlockKey {
        ("f.col".to_string(), i)
    }

    #[test]
    fn hit_and_miss_counters() {
        let pool = BufferPool::new(4);
        assert!(pool.get(&key(0)).is_none());
        pool.insert(key(0), block(0));
        assert!(pool.get(&key(0)).is_some());
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        // One shard: the historical global-LRU behavior, exactly.
        let pool = BufferPool::with_shards(2, 1);
        pool.insert(key(0), block(0));
        pool.insert(key(1), block(1));
        // Touch 0 so 1 becomes LRU.
        pool.get(&key(0));
        pool.insert(key(2), block(2));
        assert!(pool.get(&key(0)).is_some());
        assert!(pool.get(&key(1)).is_none(), "LRU entry should be evicted");
        assert!(pool.get(&key(2)).is_some());
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let pool = BufferPool::with_shards(2, 1);
        pool.insert(key(0), block(0));
        pool.insert(key(1), block(1));
        pool.insert(key(0), block(0)); // same key: no eviction needed
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.stats().evictions, 0);
    }

    #[test]
    fn resident_blocks_per_file() {
        let pool = BufferPool::new(8);
        pool.insert(("a".into(), 0), block(0));
        pool.insert(("a".into(), 1), block(0));
        pool.insert(("b".into(), 0), block(0));
        assert_eq!(pool.resident_blocks("a"), 2);
        assert_eq!(pool.resident_blocks("b"), 1);
        assert_eq!(pool.resident_blocks("c"), 0);
    }

    #[test]
    fn arc_survives_eviction() {
        let pool = BufferPool::with_shards(1, 1);
        let b = block(7);
        pool.insert(key(0), Arc::clone(&b));
        let held = pool.get(&key(0)).unwrap();
        pool.insert(key(1), block(8)); // evicts key(0)
        assert!(pool.get(&key(0)).is_none());
        // The operator's Arc is still valid.
        assert_eq!(held.start_pos(), 7);
    }

    #[test]
    fn clear_resets_counters_but_not_the_stripe_count() {
        let pool = BufferPool::new(4);
        pool.insert(key(0), block(0));
        pool.get(&key(0));
        pool.clear();
        assert!(pool.is_empty());
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 0, 0));
        assert_eq!(s.shards, pool.num_shards() as u64, "structure survives");
    }

    #[test]
    fn stats_report_stripe_count() {
        assert_eq!(BufferPool::with_shards(16, 4).stats().shards, 4);
        assert_eq!(BufferPool::with_shards(16, 1).stats().shards, 1);
        // Merged snapshots keep the widest pool seen, not a sum.
        let mut merged = BufferPool::with_shards(16, 4).stats();
        merged += BufferPool::with_shards(16, 2).stats();
        assert_eq!(merged.shards, 4);
    }

    #[test]
    fn get_or_insert_counts_one_lookup_per_call() {
        let pool = BufferPool::new(4);
        let b: Result<_, ()> = pool.get_or_insert_with(&key(0), || Ok(block(0)));
        assert!(b.is_ok());
        let b: Result<_, ()> = pool.get_or_insert_with(&key(0), || panic!("must not refill"));
        assert!(b.is_ok());
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn get_or_insert_failed_fill_counts_miss_and_caches_nothing() {
        let pool = BufferPool::new(4);
        let r = pool.get_or_insert_with(&key(0), || Err("disk gone"));
        assert_eq!(r.unwrap_err(), "disk gone");
        assert_eq!(pool.stats().misses, 1);
        assert!(pool.is_empty());
    }

    #[test]
    fn concurrent_misses_single_flight() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = BufferPool::new(8);
        let fills = AtomicUsize::new(0);
        const THREADS: usize = 8;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let b: Result<_, ()> = pool.get_or_insert_with(&key(7), || {
                        fills.fetch_add(1, Ordering::SeqCst);
                        // Widen the race window: everyone else must wait on
                        // the stripe, not refill.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(block(7))
                    });
                    assert_eq!(b.unwrap().start_pos(), 7);
                });
            }
        });
        assert_eq!(fills.load(Ordering::SeqCst), 1, "exactly one fill");
        let s = pool.stats();
        assert_eq!(s.misses, 1, "one counted miss for one disk read");
        assert_eq!(s.hits as usize, THREADS - 1);
    }

    #[test]
    fn waiters_on_a_foreign_fill_are_flagged_but_siblings_are_not() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Queries 1 and 2 race the same cold block, two threads each.
        // Exactly one thread fills; every waiter served by a *different*
        // query's fill is flagged, same-query siblings and the filler are
        // not. The filler's token is unknown in advance, so assert the
        // invariant pairwise instead of by hardcoded winner.
        let pool = BufferPool::new(8);
        let fills = AtomicUsize::new(0);
        let filler_token = AtomicUsize::new(0);
        let outcomes: Vec<(u64, bool)> = std::thread::scope(|s| {
            let handles: Vec<_> = [1u64, 1, 2, 2]
                .iter()
                .map(|&token| {
                    let pool = &pool;
                    let fills = &fills;
                    let filler_token = &filler_token;
                    s.spawn(move || {
                        let (b, waited): (_, bool) = pool
                            .get_or_insert_with_owner(&key(3), token, || {
                                fills.fetch_add(1, Ordering::SeqCst);
                                filler_token.store(token as usize, Ordering::SeqCst);
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                Ok::<_, ()>(block(3))
                            })
                            .unwrap();
                        assert_eq!(b.start_pos(), 3);
                        (token, waited)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(fills.load(Ordering::SeqCst), 1, "single flight held");
        let winner = filler_token.load(Ordering::SeqCst) as u64;
        for (token, waited) in outcomes {
            if waited {
                assert_ne!(token, winner, "a sibling waiter must not be flagged");
            }
        }
        // A later lookup is a plain hit: no flag, whoever asks.
        let (_, waited) = pool
            .get_or_insert_with_owner(&key(3), 9, || Ok::<_, ()>(block(3)))
            .unwrap();
        assert!(!waited, "plain hits are never credited");
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let pool = BufferPool::new(8);
        pool.insert(("a".into(), 0), block(0));
        pool.insert(("a".into(), 1), block(1));
        pool.insert(("b".into(), 0), block(2));
        let before = pool.stats();
        assert_eq!(pool.invalidate_file("a"), 2);
        assert_eq!(pool.resident_blocks("a"), 0);
        assert_eq!(pool.resident_blocks("b"), 1);
        assert_eq!(pool.invalidate_file("a"), 0, "second pass finds nothing");
        let after = pool.stats();
        assert_eq!(
            (after.hits, after.misses, after.evictions),
            (before.hits, before.misses, before.evictions),
            "invalidation is not an eviction"
        );
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let pool = BufferPool::new(0);
        assert_eq!(pool.capacity(), 1);
        assert_eq!(pool.num_shards(), 1, "shards capped by capacity");
        pool.insert(key(0), block(0));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn shard_capacities_sum_to_total() {
        // 10 blocks over 4 shards: 3+3+2+2, never more.
        let pool = BufferPool::with_shards(10, 4);
        assert_eq!(pool.num_shards(), 4);
        let caps: Vec<usize> = pool.shards.read().iter().map(|s| s.capacity).collect();
        assert_eq!(caps.iter().sum::<usize>(), 10);
        assert_eq!(caps, vec![3, 3, 2, 2]);
        // Shard count is capped by capacity.
        let tiny = BufferPool::with_shards(3, 64);
        assert_eq!(tiny.num_shards(), 3);
        assert!(tiny.shards.read().iter().all(|s| s.capacity == 1));
    }

    #[test]
    fn reshard_preserves_entries_and_counters_exactly() {
        // 2 stripes → 8: the nightly-soak mismatch (threads=8, shards=2)
        // fixed in place. 8 entries in a 64-block pool: even the worst
        // hash clustering (all 8 keys in one new stripe of capacity 8)
        // cannot overflow, so the move is eviction-free by construction.
        let pool = BufferPool::with_shards(64, 2);
        for i in 0..8u32 {
            let _: Result<_, ()> = pool.get_or_insert_with(&key(i), || Ok(block(u64::from(i))));
        }
        for i in 0..4u32 {
            assert!(pool.get(&key(i)).is_some());
        }
        let before = pool.stats();
        let cached = pool.len();

        pool.reshard(8);

        assert_eq!(pool.num_shards(), 8);
        assert_eq!(pool.len(), cached, "cached set survives the move");
        let after = pool.stats();
        assert_eq!(after.hits, before.hits, "hits preserved exactly");
        assert_eq!(after.misses, before.misses, "misses preserved exactly");
        assert_eq!(after.evictions, before.evictions, "no overflow evictions");
        assert_eq!(after.shards, 8);
        // Every pre-move block is still served as a hit.
        for i in 0..8u32 {
            assert!(pool.get(&key(i)).is_some(), "key {i} lost in reshard");
        }
        assert_eq!(pool.stats().hits, before.hits + 8);
    }

    #[test]
    fn reshard_is_idempotent_and_clamped() {
        let pool = BufferPool::with_shards(4, 2);
        pool.insert(key(0), block(0));
        pool.reshard(2); // no-op
        assert_eq!(pool.num_shards(), 2);
        assert!(pool.get(&key(0)).is_some());
        // Clamped by capacity: asking for 64 stripes of a 4-block pool
        // yields 4 — the same cap construction applies.
        pool.reshard(64);
        assert_eq!(pool.num_shards(), 4);
        // And back down to one global LRU.
        pool.reshard(1);
        assert_eq!(pool.num_shards(), 1);
        assert!(pool.get(&key(0)).is_some());
    }

    #[test]
    fn reshard_overflow_evicts_oldest_first_and_counts() {
        // One stripe holding 4 entries, resharded to 4 stripes of 1: any
        // stripe receiving k > 1 entries must evict k-1, keeping its most
        // recent. Total entries after = 4 - total overflow, and every
        // overflow eviction is counted.
        let pool = BufferPool::with_shards(4, 1);
        for i in 0..4u32 {
            pool.insert(key(i), block(u64::from(i)));
        }
        let before = pool.stats();
        assert_eq!(before.evictions, 0);
        pool.reshard(4);
        let after = pool.stats();
        let lost = 4 - pool.len() as u64;
        assert_eq!(
            after.evictions,
            before.evictions + lost,
            "every overflow eviction is counted"
        );
        assert!(!pool.is_empty());
        // Recency carried over: the newest entry (key 3) always survives —
        // whatever stripe it landed in, it is that stripe's most recent.
        assert!(pool.get(&key(3)).is_some(), "most recent entry survives");
    }

    #[test]
    fn reshard_under_concurrent_lookups_stays_consistent() {
        let pool = BufferPool::with_shards(256, 2);
        for i in 0..64u32 {
            pool.insert(key(i), block(u64::from(i)));
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = &pool;
                s.spawn(move || {
                    for round in 0..200u32 {
                        let i = (t * 50 + round) % 64;
                        let b: Result<_, ()> =
                            pool.get_or_insert_with(&key(i), || Ok(block(u64::from(i))));
                        assert_eq!(b.unwrap().start_pos(), u64::from(i));
                    }
                });
            }
            s.spawn(|| {
                for n in [4usize, 8, 2, 16, 1] {
                    pool.reshard(n);
                    std::thread::yield_now();
                }
            });
        });
        let stats = pool.stats();
        assert_eq!(
            stats.hits + stats.misses,
            800,
            "every lookup counted exactly once across reshards"
        );
        assert_eq!(pool.num_shards(), 1);
        assert_eq!(pool.len(), 64, "no entry lost (capacity ample)");
    }

    #[test]
    fn sharded_pool_bounds_capacity_under_churn() {
        let pool = BufferPool::with_shards(8, 4);
        for i in 0..200u32 {
            pool.insert(key(i), block(u64::from(i)));
            assert!(pool.len() <= 8, "global bound holds at every moment");
        }
        let s = pool.stats();
        assert!(s.evictions >= 192, "churn evicts: {}", s.evictions);
    }

    #[test]
    fn degenerate_single_shard_matches_multi_shard_counters() {
        // The same deterministic workload against 1 shard and 4 shards:
        // hits and misses must agree exactly (a key lands in exactly one
        // shard, so lookup outcomes are sharding-invariant as long as
        // nothing evicts), proving the striping never double- or
        // under-counts.
        let run = |pool: &BufferPool| {
            for i in 0..32u32 {
                let _: Result<_, ()> = pool.get_or_insert_with(&key(i), || Ok(block(u64::from(i))));
            }
            for i in 0..32u32 {
                assert!(pool.get(&key(i)).is_some());
            }
            pool.stats()
        };
        // Capacity 128 over 4 shards: 32 per shard, so even a worst-case
        // hash distribution (all 32 keys in one shard) cannot evict —
        // the no-eviction precondition holds for any hasher.
        let single = run(&BufferPool::with_shards(128, 1));
        let sharded = run(&BufferPool::with_shards(128, 4));
        assert_eq!(single.hits, sharded.hits);
        assert_eq!(single.misses, sharded.misses);
        assert_eq!(single.evictions, 0);
        assert_eq!(sharded.evictions, 0);
    }
}
