//! Simulated-disk accounting.
//!
//! The paper's I/O cost term is
//! `(|C| / PF) * SEEK + |C| * READ`, scaled by `(1 - F)` for the fraction
//! of pages already resident. Our benchmarks run on a machine whose page
//! cache makes real 2006-era I/O unobservable, so instead of timing the
//! disk we *count* what a cold disk would have done: every buffer-pool
//! miss records one block read, and a read that is not physically
//! contiguous with the previous read of the same file records a seek.
//! Harnesses price these counters with the model constants to report a
//! modeled cold-I/O time next to the measured CPU time.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Counters of simulated disk activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Blocks fetched from "disk" (buffer-pool misses).
    pub block_reads: u64,
    /// Non-sequential fetches (head movements a spinning disk would make).
    pub seeks: u64,
}

impl IoStats {
    /// Difference of two snapshots (`self` after, `earlier` before).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            block_reads: self.block_reads - earlier.block_reads,
            seeks: self.seeks - earlier.seeks,
        }
    }

    /// Price the counters: `seeks * seek_us + block_reads * read_us`,
    /// in microseconds.
    pub fn modeled_micros(&self, seek_us: f64, read_us: f64) -> f64 {
        self.seeks as f64 * seek_us + self.block_reads as f64 * read_us
    }
}

#[derive(Debug, Default)]
struct MeterInner {
    stats: IoStats,
    /// Per-file offset one past the last byte read, to detect seeks.
    last_end: HashMap<String, u64>,
}

/// Thread-safe seek/read counter shared by every column reader.
#[derive(Debug, Default)]
pub struct IoMeter {
    inner: Mutex<MeterInner>,
}

impl IoMeter {
    /// New meter with zeroed counters.
    pub fn new() -> IoMeter {
        IoMeter::default()
    }

    /// Record a block fetch of `len` bytes at `offset` of `file`.
    pub fn record_read(&self, file: &str, offset: u64, len: u64) {
        let mut inner = self.inner.lock();
        let sequential = inner.last_end.get(file) == Some(&offset);
        if !sequential {
            inner.stats.seeks += 1;
        }
        inner.stats.block_reads += 1;
        inner.last_end.insert(file.to_string(), offset + len);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Reset counters and sequential-position tracking.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.stats = IoStats::default();
        inner.last_end.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_seek_once() {
        let m = IoMeter::new();
        m.record_read("f", 0, 100);
        m.record_read("f", 100, 100);
        m.record_read("f", 200, 100);
        let s = m.snapshot();
        assert_eq!(s.block_reads, 3);
        assert_eq!(s.seeks, 1);
    }

    #[test]
    fn jumps_count_as_seeks() {
        let m = IoMeter::new();
        m.record_read("f", 0, 100);
        m.record_read("f", 500, 100); // jump
        m.record_read("f", 600, 100); // sequential
        m.record_read("f", 0, 100); // jump back
        assert_eq!(m.snapshot().seeks, 3);
    }

    #[test]
    fn interleaved_files_each_track_position() {
        let m = IoMeter::new();
        m.record_read("a", 0, 100);
        m.record_read("b", 0, 100);
        m.record_read("a", 100, 100); // still sequential for a
        m.record_read("b", 100, 100); // still sequential for b
        assert_eq!(m.snapshot().seeks, 2);
        assert_eq!(m.snapshot().block_reads, 4);
    }

    #[test]
    fn since_and_pricing() {
        let m = IoMeter::new();
        m.record_read("f", 0, 10);
        let before = m.snapshot();
        m.record_read("f", 10, 10);
        m.record_read("f", 999, 10);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.block_reads, 2);
        assert_eq!(delta.seeks, 1);
        // 1 seek * 2500us + 2 reads * 1000us
        assert_eq!(delta.modeled_micros(2500.0, 1000.0), 4500.0);
    }

    #[test]
    fn reset_clears_position_tracking() {
        let m = IoMeter::new();
        m.record_read("f", 0, 10);
        m.reset();
        assert_eq!(m.snapshot(), IoStats::default());
        // After reset, the next read at offset 10 is a seek again.
        m.record_read("f", 10, 10);
        assert_eq!(m.snapshot().seeks, 1);
    }
}
