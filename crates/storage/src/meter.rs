//! Simulated-disk accounting.
//!
//! The paper's I/O cost term is
//! `(|C| / PF) * SEEK + |C| * READ`, scaled by `(1 - F)` for the fraction
//! of pages already resident. Our benchmarks run on a machine whose page
//! cache makes real 2006-era I/O unobservable, so instead of timing the
//! disk we *count* what a cold disk would have done: every buffer-pool
//! miss records one block read, and a read that is not physically
//! contiguous with the previous read of the same file records a seek.
//! Harnesses price these counters with the model constants to report a
//! modeled cold-I/O time next to the measured CPU time.
//!
//! Sequentiality is judged per **(file, reading thread)**: the parallel
//! executor gives each worker its own contiguous granule span, so every
//! worker's read stream is sequential on its own, and interleaving at the
//! shared meter must not invent head movements a per-worker disk arm
//! would never make. Counters are kept both globally (for
//! [`IoMeter::snapshot`]) and per thread (for
//! [`IoMeter::thread_snapshot`], which lets a worker report exactly the
//! I/O it caused).

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::{self, ThreadId};

use parking_lot::Mutex;

/// Monotonic allocator for query tokens. Token `0` is reserved for
/// "no query" (untracked work: loads, maintenance, tests driving the
/// pool directly), so the first allocated token is 1.
static NEXT_QUERY_TOKEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The query the current thread is working for, or 0.
    static QUERY_TOKEN: Cell<u64> = const { Cell::new(0) };
}

/// Allocate a fresh, process-unique query token.
pub fn next_query_token() -> u64 {
    NEXT_QUERY_TOKEN.fetch_add(1, Ordering::Relaxed)
}

/// Tag the calling thread as working for `token` (0 clears the tag).
/// The executor sets this at the start of every pipeline span and on the
/// session thread, so a buffer-pool fill can tell whether a waiter
/// belongs to the same query as the filler.
pub fn set_thread_query_token(token: u64) {
    QUERY_TOKEN.with(|t| t.set(token));
}

/// The calling thread's current query token (0 when untracked).
pub fn current_query_token() -> u64 {
    QUERY_TOKEN.with(|t| t.get())
}

/// Counters of simulated disk activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Blocks fetched from "disk" (buffer-pool misses).
    pub block_reads: u64,
    /// Non-sequential fetches (head movements a spinning disk would make).
    pub seeks: u64,
}

impl IoStats {
    /// Difference of two snapshots (`self` after, `earlier` before).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            block_reads: self.block_reads - earlier.block_reads,
            seeks: self.seeks - earlier.seeks,
        }
    }

    /// Price the counters: `seeks * seek_us + block_reads * read_us`,
    /// in microseconds.
    pub fn modeled_micros(&self, seek_us: f64, read_us: f64) -> f64 {
        self.seeks as f64 * seek_us + self.block_reads as f64 * read_us
    }
}

/// Associative, commutative merge — the parallel executor folds the
/// per-worker fragments into query totals with it.
impl AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        self.block_reads += rhs.block_reads;
        self.seeks += rhs.seeks;
    }
}

#[derive(Debug, Default)]
struct MeterInner {
    stats: IoStats,
    /// Per-thread share of `stats`, so a worker can report the I/O it
    /// caused without seeing its siblings'.
    per_thread: HashMap<ThreadId, IoStats>,
    /// Offset one past the last byte read, per (file, reading thread), to
    /// detect seeks against each worker's own read stream.
    last_end: HashMap<(String, ThreadId), u64>,
}

/// Thread-safe seek/read counter shared by every column reader.
#[derive(Debug, Default)]
pub struct IoMeter {
    inner: Mutex<MeterInner>,
}

/// Lock-free accumulator for one query's I/O, fed by
/// [`IoMeter::forget_current_thread`] harvests from the threads that ran
/// the query (scoped pipeline workers and the calling thread). Summing
/// per-thread forgets — instead of diffing the global counters — keeps a
/// query's [`IoStats`] exact when several sessions execute concurrently
/// on one store: the global snapshot would interleave every session's
/// reads, the sink sees only its own query's threads.
#[derive(Debug, Default)]
pub struct IoSink {
    block_reads: std::sync::atomic::AtomicU64,
    seeks: std::sync::atomic::AtomicU64,
}

impl IoSink {
    /// A zeroed sink.
    pub fn new() -> IoSink {
        IoSink::default()
    }

    /// Fold one thread's forgotten counters in.
    pub fn add(&self, s: IoStats) {
        use std::sync::atomic::Ordering;
        self.block_reads.fetch_add(s.block_reads, Ordering::Relaxed);
        self.seeks.fetch_add(s.seeks, Ordering::Relaxed);
    }

    /// The accumulated total.
    pub fn total(&self) -> IoStats {
        use std::sync::atomic::Ordering;
        IoStats {
            block_reads: self.block_reads.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
        }
    }
}

impl IoMeter {
    /// New meter with zeroed counters.
    pub fn new() -> IoMeter {
        IoMeter::default()
    }

    /// Record a block fetch of `len` bytes at `offset` of `file`,
    /// attributed to the calling thread.
    pub fn record_read(&self, file: &str, offset: u64, len: u64) {
        let tid = thread::current().id();
        let mut inner = self.inner.lock();
        let key = (file.to_string(), tid);
        let sequential = inner.last_end.get(&key) == Some(&offset);
        let thread_stats = inner.per_thread.entry(tid).or_default();
        if !sequential {
            thread_stats.seeks += 1;
        }
        thread_stats.block_reads += 1;
        if !sequential {
            inner.stats.seeks += 1;
        }
        inner.stats.block_reads += 1;
        inner.last_end.insert(key, offset + len);
    }

    /// Credit the calling thread with one block read it *caused but did
    /// not perform*: it arrived at the buffer pool while another query
    /// was already filling the same block, and single-flight
    /// deduplication handed it the other query's result. The physical
    /// read was recorded once by the filling thread, so only the
    /// per-thread share moves here — the global counters keep counting
    /// disk blocks actually transferred, exactly once each. Sequential-
    /// position tracking is untouched: the crediting thread's own read
    /// stream never visited the disk for this block, and a later real
    /// read by this thread should be judged against where *its* arm
    /// actually is.
    pub fn credit_block_read(&self, _file: &str) {
        let tid = thread::current().id();
        let mut inner = self.inner.lock();
        inner.per_thread.entry(tid).or_default().block_reads += 1;
    }

    /// Snapshot the global counters (all threads).
    pub fn snapshot(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Snapshot the calling thread's share of the counters.
    pub fn thread_snapshot(&self) -> IoStats {
        let tid = thread::current().id();
        self.inner
            .lock()
            .per_thread
            .get(&tid)
            .copied()
            .unwrap_or_default()
    }

    /// Drop the calling thread's per-thread state (counters and
    /// sequential-position tracking), returning the dropped counters.
    /// The query executor calls this at the end of every execution —
    /// worker threads and the serial path alike — so a long-lived meter
    /// does not accumulate entries for dead threads; code driving
    /// [`record_read`](Self::record_read) directly from short-lived
    /// threads should do the same. The global counters are unaffected.
    ///
    /// The returned delta is what makes **per-query** accounting possible
    /// under concurrency: a query funnels every forget of its own threads
    /// (scoped pipeline workers and the session thread between pipeline
    /// runs) into an [`IoSink`], and the sink total is exactly the I/O
    /// that query caused — no other session's reads can reach it, because
    /// no other session's query ever runs on these threads.
    pub fn forget_current_thread(&self) -> IoStats {
        let tid = thread::current().id();
        let mut inner = self.inner.lock();
        let dropped = inner.per_thread.remove(&tid).unwrap_or_default();
        inner.last_end.retain(|(_, t), _| *t != tid);
        dropped
    }

    /// Reset counters and sequential-position tracking.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.stats = IoStats::default();
        inner.per_thread.clear();
        inner.last_end.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_reads_seek_once() {
        let m = IoMeter::new();
        m.record_read("f", 0, 100);
        m.record_read("f", 100, 100);
        m.record_read("f", 200, 100);
        let s = m.snapshot();
        assert_eq!(s.block_reads, 3);
        assert_eq!(s.seeks, 1);
    }

    #[test]
    fn jumps_count_as_seeks() {
        let m = IoMeter::new();
        m.record_read("f", 0, 100);
        m.record_read("f", 500, 100); // jump
        m.record_read("f", 600, 100); // sequential
        m.record_read("f", 0, 100); // jump back
        assert_eq!(m.snapshot().seeks, 3);
    }

    #[test]
    fn interleaved_files_each_track_position() {
        let m = IoMeter::new();
        m.record_read("a", 0, 100);
        m.record_read("b", 0, 100);
        m.record_read("a", 100, 100); // still sequential for a
        m.record_read("b", 100, 100); // still sequential for b
        assert_eq!(m.snapshot().seeks, 2);
        assert_eq!(m.snapshot().block_reads, 4);
    }

    #[test]
    fn since_and_pricing() {
        let m = IoMeter::new();
        m.record_read("f", 0, 10);
        let before = m.snapshot();
        m.record_read("f", 10, 10);
        m.record_read("f", 999, 10);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.block_reads, 2);
        assert_eq!(delta.seeks, 1);
        // 1 seek * 2500us + 2 reads * 1000us
        assert_eq!(delta.modeled_micros(2500.0, 1000.0), 4500.0);
    }

    #[test]
    fn reset_clears_position_tracking() {
        let m = IoMeter::new();
        m.record_read("f", 0, 10);
        m.reset();
        assert_eq!(m.snapshot(), IoStats::default());
        assert_eq!(m.thread_snapshot(), IoStats::default());
        // After reset, the next read at offset 10 is a seek again.
        m.record_read("f", 10, 10);
        assert_eq!(m.snapshot().seeks, 1);
    }

    #[test]
    fn add_assign_sums_fields() {
        let mut a = IoStats {
            block_reads: 3,
            seeks: 1,
        };
        a += IoStats {
            block_reads: 4,
            seeks: 2,
        };
        assert_eq!(
            a,
            IoStats {
                block_reads: 7,
                seeks: 3
            }
        );
    }

    #[test]
    fn interleaved_threads_each_stay_sequential() {
        // Two readers of one file, strictly alternating: with a global
        // last-end every read would jump (4 seeks); per (file, thread)
        // tracking sees two sequential streams (1 seek each).
        use std::sync::mpsc;
        let m = IoMeter::new();
        let (to_b, from_a) = mpsc::channel::<()>();
        let (to_a, from_b) = mpsc::channel::<()>();
        let m = &m;
        std::thread::scope(|s| {
            s.spawn(move || {
                m.record_read("f", 0, 100);
                to_b.send(()).unwrap();
                from_b.recv().unwrap();
                m.record_read("f", 100, 100);
                to_b.send(()).unwrap();
            });
            s.spawn(move || {
                from_a.recv().unwrap();
                m.record_read("f", 500, 100);
                to_a.send(()).unwrap();
                from_a.recv().unwrap();
                m.record_read("f", 600, 100);
            });
        });
        let s = m.snapshot();
        assert_eq!(s.block_reads, 4);
        assert_eq!(s.seeks, 2, "one seek per worker stream, not per switch");
    }

    #[test]
    fn forget_returns_the_dropped_share_and_sinks_sum_exactly() {
        let m = IoMeter::new();
        let sink = IoSink::new();
        m.record_read("f", 0, 10);
        std::thread::scope(|s| {
            s.spawn(|| {
                m.record_read("f", 100, 10);
                m.record_read("f", 110, 10);
                sink.add(m.forget_current_thread());
            });
        });
        sink.add(m.forget_current_thread());
        assert_eq!(sink.total(), m.snapshot(), "harvests cover every read");
        assert_eq!(sink.total().block_reads, 3);
        // A second forget harvests nothing: the state really was dropped.
        assert_eq!(m.forget_current_thread(), IoStats::default());
    }

    #[test]
    fn query_tokens_are_unique_and_thread_local() {
        let a = next_query_token();
        let b = next_query_token();
        assert_ne!(a, b);
        assert_ne!(a, 0, "0 is reserved for untracked work");
        set_thread_query_token(a);
        assert_eq!(current_query_token(), a);
        let seen = std::thread::scope(|s| s.spawn(current_query_token).join().unwrap());
        assert_eq!(seen, 0, "tokens do not leak across threads");
        set_thread_query_token(0);
        assert_eq!(current_query_token(), 0);
    }

    #[test]
    fn credited_reads_move_thread_share_not_global() {
        let m = IoMeter::new();
        m.record_read("f", 0, 10);
        m.credit_block_read("f");
        assert_eq!(m.thread_snapshot().block_reads, 2);
        assert_eq!(m.snapshot().block_reads, 1, "physical count stays exact");
        assert_eq!(m.thread_snapshot().seeks, 1, "credit never seeks");
        // Credit does not disturb this thread's sequential position.
        m.record_read("f", 10, 10);
        assert_eq!(m.snapshot().seeks, 1);
    }

    #[test]
    fn thread_snapshot_isolates_and_sums_to_global() {
        let m = IoMeter::new();
        m.record_read("f", 0, 10);
        let main_before = m.thread_snapshot();
        assert_eq!(main_before.block_reads, 1);
        let worker_stats = std::thread::scope(|s| {
            s.spawn(|| {
                m.record_read("f", 100, 10);
                m.record_read("f", 110, 10);
                let mine = m.thread_snapshot();
                m.forget_current_thread();
                mine
            })
            .join()
            .unwrap()
        });
        assert_eq!(worker_stats.block_reads, 2);
        assert_eq!(worker_stats.seeks, 1, "worker stream starts with a seek");
        // Worker reads never leak into the main thread's view...
        assert_eq!(m.thread_snapshot(), main_before);
        // ...but the global snapshot has everything.
        let mut total = main_before;
        total += worker_stats;
        assert_eq!(m.snapshot(), total);
    }
}
