//! Property tests: the three position-list representations implement the
//! same set algebra.
//!
//! The model is a `BTreeSet<Pos>`; every representation and every pairing
//! of representations must agree with set intersection/union, and
//! conversions must be lossless.

use std::collections::BTreeSet;

use matstrat_common::PosRange;
use matstrat_poslist::{Bitmap, PosList, PosListBuilder, PosVec, RangeList};
use proptest::prelude::*;

const UNIVERSE: u64 = 512;

fn arb_posset() -> impl Strategy<Value = BTreeSet<u64>> {
    prop::collection::btree_set(0u64..UNIVERSE, 0..128)
}

fn as_explicit(s: &BTreeSet<u64>) -> PosList {
    PosList::Explicit(PosVec::from_sorted(s.iter().copied().collect()))
}

fn as_bitmap(s: &BTreeSet<u64>) -> PosList {
    PosList::Bitmap(Bitmap::from_positions(
        PosRange::new(0, UNIVERSE),
        s.iter().copied(),
    ))
}

fn as_ranges(s: &BTreeSet<u64>) -> PosList {
    let mut ranges = Vec::new();
    for &p in s {
        ranges.push(PosRange::new(p, p + 1));
    }
    PosList::Ranges(RangeList::from_ranges(ranges))
}

fn all_reprs(s: &BTreeSet<u64>) -> Vec<PosList> {
    vec![as_explicit(s), as_bitmap(s), as_ranges(s)]
}

proptest! {
    #[test]
    fn and_matches_set_intersection(a in arb_posset(), b in arb_posset()) {
        let expected: Vec<u64> = a.intersection(&b).copied().collect();
        for ra in all_reprs(&a) {
            for rb in all_reprs(&b) {
                prop_assert_eq!(ra.and(&rb).to_vec(), expected.clone());
            }
        }
    }

    #[test]
    fn or_matches_set_union(a in arb_posset(), b in arb_posset()) {
        let expected: Vec<u64> = a.union(&b).copied().collect();
        for ra in all_reprs(&a) {
            for rb in all_reprs(&b) {
                prop_assert_eq!(ra.or(&rb).to_vec(), expected.clone());
            }
        }
    }

    #[test]
    fn conversions_are_lossless(a in arb_posset()) {
        let expected: Vec<u64> = a.iter().copied().collect();
        for r in all_reprs(&a) {
            prop_assert_eq!(r.to_vec(), expected.clone());
            prop_assert_eq!(r.to_ranges().iter().collect::<Vec<_>>(), expected.clone());
            prop_assert_eq!(r.to_explicit().into_vec(), expected.clone());
            prop_assert_eq!(
                r.to_bitmap(PosRange::new(0, UNIVERSE)).iter().collect::<Vec<_>>(),
                expected.clone()
            );
            prop_assert_eq!(r.count(), expected.len() as u64);
        }
    }

    #[test]
    fn contains_agrees_with_set(a in arb_posset(), probe in 0u64..UNIVERSE) {
        for r in all_reprs(&a) {
            prop_assert_eq!(r.contains(probe), a.contains(&probe));
        }
    }

    #[test]
    fn clip_matches_set_filter(a in arb_posset(), lo in 0u64..UNIVERSE, len in 0u64..UNIVERSE) {
        let window = PosRange::new(lo, (lo + len).min(UNIVERSE));
        let expected: Vec<u64> = a.iter().copied().filter(|&p| window.contains(p)).collect();
        for r in all_reprs(&a) {
            prop_assert_eq!(r.clip(window).to_vec(), expected.clone());
        }
    }

    #[test]
    fn and_many_matches_fold(sets in prop::collection::vec(arb_posset(), 0..5)) {
        let covering = PosRange::new(0, UNIVERSE);
        let lists: Vec<PosList> = sets.iter().map(as_bitmap).collect();
        let expected: BTreeSet<u64> = match sets.split_first() {
            None => (0..UNIVERSE).collect(),
            Some((first, rest)) => rest.iter().fold(first.clone(), |acc, s| {
                acc.intersection(s).copied().collect()
            }),
        };
        let got = PosList::and_many(&lists, covering);
        prop_assert_eq!(got.to_vec(), expected.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn builder_reproduces_input(a in arb_posset()) {
        let mut b = PosListBuilder::new();
        for &p in &a {
            b.push(p);
        }
        let expected: Vec<u64> = a.iter().copied().collect();
        prop_assert_eq!(b.clone().finish().to_vec(), expected.clone());
        prop_assert_eq!(b.clone().finish_as_ranges().to_vec(), expected.clone());
        prop_assert_eq!(b.clone().finish_as_explicit().to_vec(), expected.clone());
        prop_assert_eq!(
            b.finish_as_bitmap(PosRange::new(0, UNIVERSE)).to_vec(),
            expected
        );
    }

    #[test]
    fn bitmap_not_is_complement(a in arb_posset()) {
        let bm = Bitmap::from_positions(PosRange::new(0, UNIVERSE), a.iter().copied());
        let complement: Vec<u64> = (0..UNIVERSE).filter(|p| !a.contains(p)).collect();
        prop_assert_eq!(bm.not().iter().collect::<Vec<_>>(), complement);
    }
}
