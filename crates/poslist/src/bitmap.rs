//! Bit-map position representation.
//!
//! A [`Bitmap`] covers a contiguous position range and stores one bit per
//! covered position (1 = position is present / passed the predicate).
//! This is the representation the paper leans on for CPU efficiency:
//! two bitmaps are ANDed 64 positions per instruction.

use matstrat_common::{Pos, PosRange};

/// A bit-vector over a covering position range.
///
/// Bit `i` of the map corresponds to absolute position `range.start + i`.
/// All operations on differently-aligned bitmaps are supported; aligned
/// operations take the fast word-wise path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    range: PosRange,
    words: Vec<u64>,
}

impl Bitmap {
    /// An all-zeros bitmap covering `range`.
    pub fn zeros(range: PosRange) -> Bitmap {
        let nwords = (range.len() as usize).div_ceil(64);
        Bitmap {
            range,
            words: vec![0; nwords],
        }
    }

    /// An all-ones bitmap covering `range`.
    pub fn ones(range: PosRange) -> Bitmap {
        let mut b = Bitmap::zeros(range);
        for w in &mut b.words {
            *w = u64::MAX;
        }
        b.mask_tail();
        b
    }

    /// Build from a sorted iterator of absolute positions, all of which
    /// must fall inside `range`. Out-of-range positions are ignored.
    pub fn from_positions(range: PosRange, positions: impl IntoIterator<Item = Pos>) -> Bitmap {
        let mut b = Bitmap::zeros(range);
        for p in positions {
            if range.contains(p) {
                b.set(p);
            }
        }
        b
    }

    /// Adopt pre-built words (bit 0 of word 0 = `range.start`). The word
    /// count must match `ceil(range.len() / 64)`; tail bits beyond the
    /// range are masked off. This is the zero-copy path for bit-vector
    /// encoded blocks, whose bit-strings are already in this layout.
    ///
    /// # Panics
    /// Panics if `words.len()` does not match the covering range.
    pub fn from_words(range: PosRange, words: Vec<u64>) -> Bitmap {
        assert_eq!(
            words.len(),
            (range.len() as usize).div_ceil(64),
            "word count does not match covering range {range}"
        );
        let mut b = Bitmap { range, words };
        b.mask_tail();
        b
    }

    /// The covering range.
    #[inline]
    pub fn covering(&self) -> PosRange {
        self.range
    }

    /// Raw 64-bit words (bit 0 of word 0 is `range.start`).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Set the bit for absolute position `pos`.
    ///
    /// # Panics
    /// Panics if `pos` lies outside the covering range.
    #[inline]
    pub fn set(&mut self, pos: Pos) {
        assert!(
            self.range.contains(pos),
            "position {pos} outside {}",
            self.range
        );
        let bit = (pos - self.range.start) as usize;
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Clear the bit for absolute position `pos`.
    ///
    /// # Panics
    /// Panics if `pos` lies outside the covering range.
    #[inline]
    pub fn clear(&mut self, pos: Pos) {
        assert!(
            self.range.contains(pos),
            "position {pos} outside {}",
            self.range
        );
        let bit = (pos - self.range.start) as usize;
        self.words[bit / 64] &= !(1u64 << (bit % 64));
    }

    /// Whether the bit for absolute position `pos` is set. Positions
    /// outside the covering range are reported as absent.
    #[inline]
    pub fn get(&self, pos: Pos) -> bool {
        if !self.range.contains(pos) {
            return false;
        }
        let bit = (pos - self.range.start) as usize;
        (self.words[bit / 64] >> (bit % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Read 64 bits starting at absolute position `abs` (which need not be
    /// word-aligned relative to this bitmap). Bits outside the covering
    /// range read as zero.
    #[inline]
    fn get_word(&self, abs: Pos) -> u64 {
        if abs >= self.range.end || abs + 64 <= self.range.start {
            return 0;
        }
        // Offset of `abs` relative to our start; may be negative.
        if abs >= self.range.start {
            let off = (abs - self.range.start) as usize;
            let (w, s) = (off / 64, off % 64);
            let lo = self.words.get(w).copied().unwrap_or(0);
            let mut out = lo >> s;
            if s > 0 {
                let hi = self.words.get(w + 1).copied().unwrap_or(0);
                out |= hi << (64 - s);
            }
            // Mask bits beyond range end.
            let remaining = self.range.end - abs;
            if remaining < 64 {
                out &= (1u64 << remaining) - 1;
            }
            out
        } else {
            // abs < start: low (start-abs) bits are zero.
            let lead = (self.range.start - abs) as usize; // 1..=63
            let inner = self.get_word(self.range.start);
            inner << lead
        }
    }

    /// Word-wise AND. The result covers the intersection of the two
    /// covering ranges. When the operands share alignment this runs one
    /// `&` per 64 positions — the paper's headline CPU win.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let range = self.range.intersect(&other.range);
        if range.is_empty() {
            return Bitmap::zeros(range);
        }
        let mut out = Bitmap::zeros(range);
        if range.start == self.range.start && range.start == other.range.start {
            // Fast aligned path.
            let n = out.words.len();
            for i in 0..n {
                out.words[i] = self.words[i] & other.words[i];
            }
        } else {
            let n = out.words.len();
            for i in 0..n {
                let abs = range.start + (i as u64) * 64;
                out.words[i] = self.get_word(abs) & other.get_word(abs);
            }
        }
        out.mask_tail();
        out
    }

    /// Word-wise OR. The result covers the hull of the two covering ranges;
    /// positions covered by only one operand contribute that operand's bits.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let range = self.range.hull(&other.range);
        let mut out = Bitmap::zeros(range);
        let n = out.words.len();
        for i in 0..n {
            let abs = range.start + (i as u64) * 64;
            out.words[i] = self.get_word(abs) | other.get_word(abs);
        }
        out.mask_tail();
        out
    }

    /// Bitwise NOT within the covering range (positions outside are
    /// unaffected — they stay "absent").
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            range: self.range,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }

    /// In-place OR of another bitmap whose covering range must be
    /// contained in this bitmap's range, with no alignment requirement:
    /// 64 positions merge per iteration even when the operands' word
    /// boundaries disagree. This is how per-block scan results are
    /// folded into a window-wide bitmap.
    ///
    /// # Panics
    /// Panics if `other`'s covering range is not contained in this one.
    pub fn union(&mut self, other: &Bitmap) {
        if other.range.is_empty() {
            return;
        }
        assert!(
            self.range.start <= other.range.start && other.range.end <= self.range.end,
            "union requires {} to contain {}",
            self.range,
            other.range
        );
        let first = ((other.range.start - self.range.start) / 64) as usize;
        let last = ((other.range.end - 1 - self.range.start) / 64) as usize;
        for w in first..=last {
            let abs = self.range.start + (w as u64) * 64;
            self.words[w] |= other.get_word(abs);
        }
    }

    /// Set every bit of a run of consecutive positions, word-wise.
    ///
    /// # Panics
    /// Panics if the run is not contained in the covering range.
    pub fn set_run(&mut self, run: PosRange) {
        if run.is_empty() {
            return;
        }
        assert!(
            self.range.start <= run.start && run.end <= self.range.end,
            "run {run} outside {}",
            self.range
        );
        let s = (run.start - self.range.start) as usize;
        let e = (run.end - 1 - self.range.start) as usize; // inclusive
        let (sw, sb) = (s / 64, (s % 64) as u32);
        let (ew, eb) = (e / 64, (e % 64) as u32);
        if sw == ew {
            self.words[sw] |= (u64::MAX >> (63 - eb)) & (u64::MAX << sb);
        } else {
            self.words[sw] |= u64::MAX << sb;
            for w in &mut self.words[sw + 1..ew] {
                *w = u64::MAX;
            }
            self.words[ew] |= u64::MAX >> (63 - eb);
        }
    }

    /// In-place OR of another bitmap whose covering range must be contained
    /// in (or equal to) this bitmap's range. Used when ORing per-value
    /// bit-strings of a bit-vector encoded block, which are always aligned.
    pub fn or_assign_aligned(&mut self, other: &Bitmap) {
        assert_eq!(
            self.range.start, other.range.start,
            "or_assign_aligned requires identical start positions"
        );
        assert!(other.range.end <= self.range.end);
        for (dst, src) in self.words.iter_mut().zip(other.words.iter()) {
            *dst |= *src;
        }
    }

    /// Iterate over set positions in ascending order.
    pub fn iter(&self) -> BitmapIter<'_> {
        BitmapIter {
            bm: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Zero any bits beyond the covering range in the final word.
    fn mask_tail(&mut self) {
        let len = self.range.len();
        let tail_bits = (len % 64) as u32;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
        // An empty range has zero words; nothing to mask.
    }
}

/// Iterator over the set positions of a [`Bitmap`].
#[derive(Debug)]
pub struct BitmapIter<'a> {
    bm: &'a Bitmap,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitmapIter<'_> {
    type Item = Pos;

    #[inline]
    fn next(&mut self) -> Option<Pos> {
        loop {
            if self.current != 0 {
                let t = self.current.trailing_zeros() as u64;
                self.current &= self.current - 1;
                return Some(self.bm.range.start + (self.word_idx as u64) * 64 + t);
            }
            self.word_idx += 1;
            if self.word_idx >= self.bm.words.len() {
                return None;
            }
            self.current = self.bm.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> PosRange {
        PosRange::new(s, e)
    }

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(r(10, 100));
        assert_eq!(z.count(), 0);
        assert!(z.is_empty());
        let o = Bitmap::ones(r(10, 100));
        assert_eq!(o.count(), 90);
        assert!(o.get(10));
        assert!(o.get(99));
        assert!(!o.get(100));
        assert!(!o.get(9));
    }

    #[test]
    fn set_get_clear() {
        let mut b = Bitmap::zeros(r(0, 130));
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn set_out_of_range_panics() {
        let mut b = Bitmap::zeros(r(10, 20));
        b.set(20);
    }

    #[test]
    fn from_positions_ignores_out_of_range() {
        let b = Bitmap::from_positions(r(10, 20), [5, 10, 15, 25]);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![10, 15]);
    }

    #[test]
    fn and_aligned() {
        let a = Bitmap::from_positions(r(0, 200), [1, 5, 64, 130, 199]);
        let b = Bitmap::from_positions(r(0, 200), [5, 64, 131, 199]);
        let c = a.and(&b);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![5, 64, 199]);
    }

    #[test]
    fn and_misaligned_ranges() {
        let a = Bitmap::from_positions(r(0, 100), [10, 50, 70, 99]);
        let b = Bitmap::from_positions(r(50, 150), [50, 70, 100, 149]);
        let c = a.and(&b);
        assert_eq!(c.covering(), r(50, 100));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![50, 70]);
    }

    #[test]
    fn and_disjoint_is_empty() {
        let a = Bitmap::ones(r(0, 64));
        let b = Bitmap::ones(r(64, 128));
        let c = a.and(&b);
        assert!(c.is_empty());
        assert!(c.covering().is_empty());
    }

    #[test]
    fn or_hull_misaligned() {
        let a = Bitmap::from_positions(r(0, 70), [0, 69]);
        let b = Bitmap::from_positions(r(100, 160), [100, 159]);
        let c = a.or(&b);
        assert_eq!(c.covering(), r(0, 160));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![0, 69, 100, 159]);
    }

    #[test]
    fn union_merges_misaligned_contained_bitmaps() {
        let mut acc = Bitmap::zeros(r(0, 300));
        acc.union(&Bitmap::from_positions(r(3, 70), [3, 42, 69]));
        acc.union(&Bitmap::from_positions(r(70, 200), [70, 127, 128, 199]));
        acc.union(&Bitmap::zeros(PosRange::empty()));
        assert_eq!(
            acc.iter().collect::<Vec<_>>(),
            vec![3, 42, 69, 70, 127, 128, 199]
        );
    }

    #[test]
    #[should_panic(expected = "contain")]
    fn union_rejects_uncontained_operand() {
        let mut acc = Bitmap::zeros(r(10, 50));
        acc.union(&Bitmap::zeros(r(40, 60)));
    }

    #[test]
    fn set_run_within_one_word_and_across_words() {
        let mut b = Bitmap::zeros(r(5, 400));
        b.set_run(r(7, 10)); // single word, interior
        b.set_run(r(64, 64)); // empty: no-op
        b.set_run(r(60, 200)); // spans full words
        b.set_run(r(399, 400)); // final position
        let got: Vec<Pos> = b.iter().collect();
        let mut expected: Vec<Pos> = (7..10).collect();
        expected.extend(60..200);
        expected.push(399);
        assert_eq!(got, expected);
        assert_eq!(b.count(), 3 + 140 + 1);
    }

    #[test]
    fn set_run_word_aligned_boundaries() {
        let mut b = Bitmap::zeros(r(0, 256));
        b.set_run(r(64, 128)); // exactly one full word
        b.set_run(r(0, 64)); // from bit zero
        assert_eq!(b.count(), 128);
        assert_eq!(b.iter().collect::<Vec<_>>(), (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn or_assign_aligned_accumulates() {
        let mut acc = Bitmap::zeros(r(64, 256));
        acc.or_assign_aligned(&Bitmap::from_positions(r(64, 256), [64, 100]));
        acc.or_assign_aligned(&Bitmap::from_positions(r(64, 200), [65, 199]));
        assert_eq!(acc.iter().collect::<Vec<_>>(), vec![64, 65, 100, 199]);
    }

    #[test]
    fn not_respects_range() {
        let b = Bitmap::from_positions(r(10, 15), [11, 13]);
        let n = b.not();
        assert_eq!(n.iter().collect::<Vec<_>>(), vec![10, 12, 14]);
        assert_eq!(n.not().iter().collect::<Vec<_>>(), vec![11, 13]);
    }

    #[test]
    fn iter_over_sparse_words() {
        let positions = vec![0u64, 63, 64, 127, 128, 500, 511];
        let b = Bitmap::from_positions(r(0, 512), positions.clone());
        assert_eq!(b.iter().collect::<Vec<_>>(), positions);
    }

    #[test]
    fn get_word_reads_across_boundaries() {
        // positions 0..=127 set in a map covering [3, 131)
        let b = Bitmap::ones(r(3, 131));
        // read 64 bits at abs 0: bits 0,1,2 are below range => zero
        let w = b.get_word(0);
        assert_eq!(w & 0b111, 0);
        assert_eq!(w >> 3, u64::MAX >> 3);
        // read near the end: positions 128,129,130 set, rest zero
        let w = b.get_word(128);
        assert_eq!(w, 0b111);
    }

    #[test]
    fn empty_range_bitmap() {
        let b = Bitmap::zeros(PosRange::empty());
        assert_eq!(b.count(), 0);
        assert!(b.iter().next().is_none());
        let o = Bitmap::ones(PosRange::empty());
        assert_eq!(o.count(), 0);
    }
}
