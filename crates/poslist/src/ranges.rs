//! Position-range list representation.
//!
//! Runs of consecutive matching positions — the common case when a
//! predicate is applied to a column sorted on that attribute — are stored
//! as `[start, end)` ranges. Intersecting two range lists is a linear
//! merge; intersecting a range with a bitmap is a constant-time slice
//! (§2.1.1 of the paper).

use matstrat_common::{Pos, PosRange};

/// A sorted list of disjoint, non-adjacent, non-empty position ranges.
///
/// The normalization invariant (sorted, gaps between consecutive ranges)
/// is established by [`RangeList::from_ranges`] and preserved by every
/// operation, so equality of `RangeList`s is set equality.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RangeList {
    ranges: Vec<PosRange>,
}

impl RangeList {
    /// The empty list.
    pub fn empty() -> RangeList {
        RangeList { ranges: Vec::new() }
    }

    /// A list containing a single range (dropped if empty).
    pub fn single(range: PosRange) -> RangeList {
        if range.is_empty() {
            RangeList::empty()
        } else {
            RangeList {
                ranges: vec![range],
            }
        }
    }

    /// Build from arbitrary ranges: sorts, drops empties, merges overlaps
    /// and adjacencies.
    pub fn from_ranges(mut ranges: Vec<PosRange>) -> RangeList {
        ranges.retain(|r| !r.is_empty());
        ranges.sort_by_key(|r| r.start);
        let mut out: Vec<PosRange> = Vec::with_capacity(ranges.len());
        for r in ranges {
            match out.last_mut() {
                Some(last) if r.start <= last.end => {
                    last.end = last.end.max(r.end);
                }
                _ => out.push(r),
            }
        }
        RangeList { ranges: out }
    }

    /// Build from already-normalized ranges (sorted, disjoint,
    /// non-adjacent, non-empty). Debug-asserts the invariant.
    pub fn from_normalized(ranges: Vec<PosRange>) -> RangeList {
        #[cfg(debug_assertions)]
        {
            for w in ranges.windows(2) {
                debug_assert!(w[0].end < w[1].start, "ranges not normalized: {w:?}");
            }
            for r in &ranges {
                debug_assert!(!r.is_empty());
            }
        }
        RangeList { ranges }
    }

    /// The underlying ranges.
    #[inline]
    pub fn ranges(&self) -> &[PosRange] {
        &self.ranges
    }

    /// Number of ranges (the `||inpos||/RL_p` term of the cost model).
    #[inline]
    pub fn num_runs(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of covered positions.
    pub fn count(&self) -> u64 {
        self.ranges.iter().map(|r| r.len()).sum()
    }

    /// Whether no positions are covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Smallest range covering every position (empty range if empty).
    pub fn covering(&self) -> PosRange {
        match (self.ranges.first(), self.ranges.last()) {
            (Some(f), Some(l)) => PosRange::new(f.start, l.end),
            _ => PosRange::empty(),
        }
    }

    /// Whether `pos` is covered. Binary search: O(log #runs).
    pub fn contains(&self, pos: Pos) -> bool {
        self.ranges
            .binary_search_by(|r| {
                if pos < r.start {
                    std::cmp::Ordering::Greater
                } else if pos >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Set intersection by two-pointer merge; O(#runs_a + #runs_b).
    pub fn intersect(&self, other: &RangeList) -> RangeList {
        let (a, b) = (&self.ranges, &other.ranges);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let x = a[i].intersect(&b[j]);
            if !x.is_empty() {
                out.push(x);
            }
            if a[i].end <= b[j].end {
                i += 1;
            } else {
                j += 1;
            }
        }
        RangeList::from_normalized(RangeList::from_ranges(out).ranges)
    }

    /// Set union by merge with coalescing.
    pub fn union(&self, other: &RangeList) -> RangeList {
        let mut all = Vec::with_capacity(self.ranges.len() + other.ranges.len());
        all.extend_from_slice(&self.ranges);
        all.extend_from_slice(&other.ranges);
        RangeList::from_ranges(all)
    }

    /// Restrict to positions inside `window`.
    pub fn clip(&self, window: PosRange) -> RangeList {
        let mut out = Vec::new();
        for r in &self.ranges {
            let x = r.intersect(&window);
            if !x.is_empty() {
                out.push(x);
            }
        }
        RangeList { ranges: out }
    }

    /// Iterate over all covered positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Pos> + '_ {
        self.ranges.iter().flat_map(|r| r.start..r.end)
    }
}

impl FromIterator<PosRange> for RangeList {
    fn from_iter<T: IntoIterator<Item = PosRange>>(iter: T) -> RangeList {
        RangeList::from_ranges(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> PosRange {
        PosRange::new(s, e)
    }

    #[test]
    fn from_ranges_normalizes() {
        let rl = RangeList::from_ranges(vec![r(5, 10), r(0, 3), r(9, 12), r(20, 20)]);
        assert_eq!(rl.ranges(), &[r(0, 3), r(5, 12)]);
        assert_eq!(rl.count(), 10);
    }

    #[test]
    fn adjacency_is_merged() {
        let rl = RangeList::from_ranges(vec![r(0, 5), r(5, 10)]);
        assert_eq!(rl.ranges(), &[r(0, 10)]);
        assert_eq!(rl.num_runs(), 1);
    }

    #[test]
    fn contains_binary_search() {
        let rl = RangeList::from_ranges(vec![r(0, 3), r(10, 20), r(100, 101)]);
        for p in [0, 2, 10, 19, 100] {
            assert!(rl.contains(p), "{p}");
        }
        for p in [3, 9, 20, 99, 101, 5000] {
            assert!(!rl.contains(p), "{p}");
        }
    }

    #[test]
    fn intersect_merge() {
        let a = RangeList::from_ranges(vec![r(0, 10), r(20, 30), r(40, 50)]);
        let b = RangeList::from_ranges(vec![r(5, 25), r(45, 60)]);
        let c = a.intersect(&b);
        assert_eq!(c.ranges(), &[r(5, 10), r(20, 25), r(45, 50)]);
    }

    #[test]
    fn intersect_empty_cases() {
        let a = RangeList::from_ranges(vec![r(0, 10)]);
        assert!(a.intersect(&RangeList::empty()).is_empty());
        assert!(RangeList::empty().intersect(&a).is_empty());
        let b = RangeList::from_ranges(vec![r(10, 20)]);
        assert!(a.intersect(&b).is_empty());
    }

    #[test]
    fn union_coalesces() {
        let a = RangeList::from_ranges(vec![r(0, 5), r(10, 15)]);
        let b = RangeList::from_ranges(vec![r(5, 10), r(20, 25)]);
        let c = a.union(&b);
        assert_eq!(c.ranges(), &[r(0, 15), r(20, 25)]);
    }

    #[test]
    fn clip_window() {
        let a = RangeList::from_ranges(vec![r(0, 10), r(20, 30)]);
        let c = a.clip(r(5, 25));
        assert_eq!(c.ranges(), &[r(5, 10), r(20, 25)]);
    }

    #[test]
    fn covering_hull() {
        let a = RangeList::from_ranges(vec![r(5, 10), r(20, 30)]);
        assert_eq!(a.covering(), r(5, 30));
        assert_eq!(RangeList::empty().covering(), PosRange::empty());
    }

    #[test]
    fn iter_positions() {
        let a = RangeList::from_ranges(vec![r(1, 3), r(7, 9)]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 7, 8]);
    }

    #[test]
    fn single_drops_empty() {
        assert!(RangeList::single(PosRange::empty()).is_empty());
        assert_eq!(RangeList::single(r(3, 7)).count(), 4);
    }
}
