//! Incremental construction of position lists with automatic
//! representation choice.
//!
//! Data-source scans emit matching positions in ascending order. A scan
//! over a column sorted on the predicate attribute emits long runs (→
//! ranges are ideal); a scan over an unsorted column emits scattered
//! singletons (→ bitmap when dense, explicit list when sparse). The
//! builder buffers runs and picks the cheapest representation when
//! finished, so operators never need to guess up front.

use matstrat_common::{Pos, PosRange};

use crate::bitmap::Bitmap;
use crate::explicit::PosVec;
use crate::poslist::PosList;
use crate::ranges::RangeList;

/// Accumulates ascending positions/runs and finishes into a [`PosList`].
///
/// Representation choice at [`finish`](PosListBuilder::finish):
/// * everything coalesced into few runs (avg run length ≥ 4) → `Ranges`;
/// * otherwise, density ≥ 1/32 over the covering window → `Bitmap`;
/// * otherwise → `Explicit`.
#[derive(Debug, Clone)]
pub struct PosListBuilder {
    runs: Vec<PosRange>,
    count: u64,
}

impl PosListBuilder {
    /// New empty builder.
    pub fn new() -> PosListBuilder {
        PosListBuilder {
            runs: Vec::new(),
            count: 0,
        }
    }

    /// Append a single position. Must be ≥ every previously appended
    /// position (strictly greater than the last).
    #[inline]
    pub fn push(&mut self, pos: Pos) {
        self.push_run(PosRange::new(pos, pos + 1));
    }

    /// Append a run of consecutive positions. Runs must arrive in
    /// ascending order and must not overlap previously appended ones;
    /// adjacent runs are coalesced.
    #[inline]
    pub fn push_run(&mut self, run: PosRange) {
        if run.is_empty() {
            return;
        }
        self.count += run.len();
        match self.runs.last_mut() {
            Some(last) if run.start <= last.end => {
                debug_assert!(run.start == last.end, "runs must be ascending and disjoint");
                last.end = last.end.max(run.end);
            }
            _ => self.runs.push(run),
        }
    }

    /// Number of positions appended so far.
    #[inline]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Finish into the representation the heuristic picks.
    pub fn finish(self) -> PosList {
        if self.runs.is_empty() {
            return PosList::empty();
        }
        let covering = PosRange::new(self.runs[0].start, self.runs.last().unwrap().end);
        let avg_run = self.count as f64 / self.runs.len() as f64;
        if avg_run >= 4.0 {
            return PosList::Ranges(RangeList::from_normalized(self.runs));
        }
        let density = self.count as f64 / covering.len() as f64;
        if density >= 1.0 / 32.0 {
            let mut bm = Bitmap::zeros(covering);
            for r in &self.runs {
                for p in r.iter() {
                    bm.set(p);
                }
            }
            PosList::Bitmap(bm)
        } else {
            let mut v = Vec::with_capacity(self.count as usize);
            for r in &self.runs {
                v.extend(r.iter());
            }
            PosList::Explicit(PosVec::from_sorted(v))
        }
    }

    /// Finish, forcing the range representation regardless of shape.
    pub fn finish_as_ranges(self) -> PosList {
        PosList::Ranges(RangeList::from_normalized(self.runs))
    }

    /// Finish, forcing a bitmap covering at least `covering`.
    pub fn finish_as_bitmap(self, covering: PosRange) -> PosList {
        let covering = match self.runs.last() {
            Some(last) => covering.hull(&PosRange::new(self.runs[0].start, last.end)),
            None => covering,
        };
        let mut bm = Bitmap::zeros(covering);
        for r in &self.runs {
            for p in r.iter() {
                bm.set(p);
            }
        }
        PosList::Bitmap(bm)
    }

    /// Finish, forcing the explicit representation.
    pub fn finish_as_explicit(self) -> PosList {
        let mut v = Vec::with_capacity(self.count as usize);
        for r in &self.runs {
            v.extend(r.iter());
        }
        PosList::Explicit(PosVec::from_sorted(v))
    }
}

impl Default for PosListBuilder {
    fn default() -> PosListBuilder {
        PosListBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poslist::Repr;

    #[test]
    fn long_runs_become_ranges() {
        let mut b = PosListBuilder::new();
        b.push_run(PosRange::new(0, 1000));
        b.push_run(PosRange::new(2000, 3000));
        let pl = b.finish();
        assert_eq!(pl.repr(), Repr::Ranges);
        assert_eq!(pl.count(), 2000);
    }

    #[test]
    fn adjacent_runs_coalesce() {
        let mut b = PosListBuilder::new();
        b.push_run(PosRange::new(0, 10));
        b.push_run(PosRange::new(10, 20));
        let pl = b.finish();
        assert_eq!(pl.to_ranges().num_runs(), 1);
    }

    #[test]
    fn dense_singletons_become_bitmap() {
        let mut b = PosListBuilder::new();
        // every other position: avg run 1, density 0.5
        for p in (0..1000).step_by(2) {
            b.push(p);
        }
        let pl = b.finish();
        assert_eq!(pl.repr(), Repr::Bitmap);
        assert_eq!(pl.count(), 500);
    }

    #[test]
    fn sparse_singletons_become_explicit() {
        let mut b = PosListBuilder::new();
        for p in (0..100_000).step_by(1000) {
            b.push(p);
        }
        let pl = b.finish();
        assert_eq!(pl.repr(), Repr::Explicit);
        assert_eq!(pl.count(), 100);
    }

    #[test]
    fn empty_builder_finishes_empty() {
        assert!(PosListBuilder::new().finish().is_empty());
        assert!(PosListBuilder::new().finish_as_ranges().is_empty());
        assert!(PosListBuilder::new().finish_as_explicit().is_empty());
        assert!(PosListBuilder::new()
            .finish_as_bitmap(PosRange::new(0, 64))
            .is_empty());
    }

    #[test]
    fn forced_representations_preserve_contents() {
        let mk = || {
            let mut b = PosListBuilder::new();
            b.push(3);
            b.push_run(PosRange::new(10, 13));
            b.push(64);
            b
        };
        let expected = vec![3u64, 10, 11, 12, 64];
        assert_eq!(mk().finish_as_ranges().to_vec(), expected);
        assert_eq!(mk().finish_as_explicit().to_vec(), expected);
        assert_eq!(
            mk().finish_as_bitmap(PosRange::new(0, 65)).to_vec(),
            expected
        );
        assert_eq!(mk().finish().to_vec(), expected);
    }

    #[test]
    fn len_tracks_positions() {
        let mut b = PosListBuilder::new();
        assert!(b.is_empty());
        b.push(5);
        b.push_run(PosRange::new(7, 17));
        assert_eq!(b.len(), 11);
    }
}
