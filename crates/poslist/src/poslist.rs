//! The unified position-list type and its AND/OR algebra.

use matstrat_common::{Pos, PosRange};

use crate::bitmap::{Bitmap, BitmapIter};
use crate::explicit::PosVec;
use crate::ranges::RangeList;

/// Which concrete representation a [`PosList`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Repr {
    /// Sorted disjoint ranges (`RangeList`).
    Ranges,
    /// One bit per position over a covering range (`Bitmap`).
    Bitmap,
    /// Sorted explicit positions (`PosVec`).
    Explicit,
}

/// A set of positions in one of the paper's three representations.
///
/// The AND of position lists follows the representation rule of §3.3:
/// *"If the positional input to AND are all ranges, then it will output
/// position ranges. Otherwise it will output positions in bit-string
/// format."* Explicit lists participate as the sparse escape hatch used
/// by collapsed multi-columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PosList {
    /// Range representation.
    Ranges(RangeList),
    /// Bitmap representation.
    Bitmap(Bitmap),
    /// Explicit sorted list representation.
    Explicit(PosVec),
}

impl PosList {
    /// The empty position list (range representation).
    pub fn empty() -> PosList {
        PosList::Ranges(RangeList::empty())
    }

    /// All positions of `range` (range representation: one run).
    pub fn full(range: PosRange) -> PosList {
        PosList::Ranges(RangeList::single(range))
    }

    /// Build from a sorted/unsorted vector of positions (explicit repr).
    pub fn from_positions(positions: Vec<Pos>) -> PosList {
        PosList::Explicit(PosVec::from_vec(positions))
    }

    /// Which representation this list currently uses.
    pub fn repr(&self) -> Repr {
        match self {
            PosList::Ranges(_) => Repr::Ranges,
            PosList::Bitmap(_) => Repr::Bitmap,
            PosList::Explicit(_) => Repr::Explicit,
        }
    }

    /// Number of positions in the set.
    pub fn count(&self) -> u64 {
        match self {
            PosList::Ranges(r) => r.count(),
            PosList::Bitmap(b) => b.count(),
            PosList::Explicit(v) => v.count(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            PosList::Ranges(r) => r.is_empty(),
            PosList::Bitmap(b) => b.is_empty(),
            PosList::Explicit(v) => v.is_empty(),
        }
    }

    /// Number of runs the cost model sees (`||poslist|| / RL_p`): ranges
    /// count runs, bitmaps and explicit lists count individual positions.
    pub fn num_runs(&self) -> u64 {
        match self {
            PosList::Ranges(r) => r.num_runs() as u64,
            PosList::Bitmap(b) => b.count(),
            PosList::Explicit(v) => v.count(),
        }
    }

    /// Smallest contiguous range covering the set.
    pub fn covering(&self) -> PosRange {
        match self {
            PosList::Ranges(r) => r.covering(),
            PosList::Bitmap(b) => b.covering(),
            PosList::Explicit(v) => v.covering(),
        }
    }

    /// Whether `pos` is in the set.
    pub fn contains(&self, pos: Pos) -> bool {
        match self {
            PosList::Ranges(r) => r.contains(pos),
            PosList::Bitmap(b) => b.get(pos),
            PosList::Explicit(v) => v.contains(pos),
        }
    }

    /// Convert to the range representation.
    pub fn to_ranges(&self) -> RangeList {
        match self {
            PosList::Ranges(r) => r.clone(),
            PosList::Bitmap(b) => {
                // Scan set bits, coalescing consecutive positions into runs.
                let mut out: Vec<PosRange> = Vec::new();
                for p in b.iter() {
                    match out.last_mut() {
                        Some(last) if last.end == p => last.end = p + 1,
                        _ => out.push(PosRange::new(p, p + 1)),
                    }
                }
                RangeList::from_normalized(out)
            }
            PosList::Explicit(v) => {
                let mut out: Vec<PosRange> = Vec::new();
                for p in v.iter() {
                    match out.last_mut() {
                        Some(last) if last.end == p => last.end = p + 1,
                        _ => out.push(PosRange::new(p, p + 1)),
                    }
                }
                RangeList::from_normalized(out)
            }
        }
    }

    /// Convert to a bitmap covering at least `covering` (hulled with the
    /// set's own covering range so no position is lost).
    pub fn to_bitmap(&self, covering: PosRange) -> Bitmap {
        let range = covering.hull(&self.covering());
        match self {
            PosList::Bitmap(b) if b.covering() == range => b.clone(),
            _ => Bitmap::from_positions(range, self.iter()),
        }
    }

    /// Convert to the explicit representation.
    pub fn to_explicit(&self) -> PosVec {
        match self {
            PosList::Explicit(v) => v.clone(),
            _ => PosVec::from_sorted(self.iter().collect()),
        }
    }

    /// Collect all positions in ascending order.
    pub fn to_vec(&self) -> Vec<Pos> {
        self.iter().collect()
    }

    /// Iterate over positions in ascending order, whatever the repr.
    pub fn iter(&self) -> PosListIter<'_> {
        match self {
            PosList::Ranges(r) => PosListIter::Ranges {
                ranges: r.ranges(),
                idx: 0,
                cur: 0,
            },
            PosList::Bitmap(b) => PosListIter::Bitmap(b.iter()),
            PosList::Explicit(v) => PosListIter::Explicit {
                slice: v.as_slice(),
                idx: 0,
            },
        }
    }

    /// Set intersection, following the paper's representation rule:
    /// ranges ∧ ranges → ranges; any other combination → bitmap
    /// (explicit ∧ explicit stays explicit, the sparse case).
    pub fn and(&self, other: &PosList) -> PosList {
        match (self, other) {
            // Case 1 (§3.3): range inputs, range output.
            (PosList::Ranges(a), PosList::Ranges(b)) => PosList::Ranges(a.intersect(b)),
            // Case 2: bit inputs, bit output — word-wise AND.
            (PosList::Bitmap(a), PosList::Bitmap(b)) => PosList::Bitmap(a.and(b)),
            // Sparse ∧ sparse: merge join of sorted lists.
            (PosList::Explicit(a), PosList::Explicit(b)) => PosList::Explicit(a.intersect(b)),
            // Case 3: range ∧ bitmap — the intersection is the slice of the
            // bitmap clipped to the ranges; output stays a bitmap.
            (PosList::Ranges(r), PosList::Bitmap(b)) | (PosList::Bitmap(b), PosList::Ranges(r)) => {
                let window = b.covering().intersect(&r.covering());
                let mut out = Bitmap::zeros(window);
                for range in r.ranges() {
                    let clipped = range.intersect(&window);
                    for p in clipped.iter() {
                        if b.get(p) {
                            out.set(p);
                        }
                    }
                }
                PosList::Bitmap(out)
            }
            // Explicit against anything: probe each listed position.
            (PosList::Explicit(v), other) | (other, PosList::Explicit(v)) => {
                let filtered: Vec<Pos> = v.iter().filter(|&p| other.contains(p)).collect();
                PosList::Explicit(PosVec::from_sorted(filtered))
            }
        }
    }

    /// Set union. Ranges ∨ ranges stays ranges; explicit ∨ explicit stays
    /// explicit; any other mix produces a bitmap over the hull.
    pub fn or(&self, other: &PosList) -> PosList {
        match (self, other) {
            (PosList::Ranges(a), PosList::Ranges(b)) => PosList::Ranges(a.union(b)),
            (PosList::Bitmap(a), PosList::Bitmap(b)) => PosList::Bitmap(a.or(b)),
            (PosList::Explicit(a), PosList::Explicit(b)) => PosList::Explicit(a.union(b)),
            (a, b) => {
                let hull = a.covering().hull(&b.covering());
                let mut out = a.to_bitmap(hull);
                for p in b.iter() {
                    out.set(p);
                }
                PosList::Bitmap(out)
            }
        }
    }

    /// N-ary AND of position lists, as performed by the AND operator.
    /// Returns the full-range identity over `covering` for an empty input.
    pub fn and_many(lists: &[PosList], covering: PosRange) -> PosList {
        match lists {
            [] => PosList::full(covering),
            [one] => one.clone(),
            [first, rest @ ..] => {
                let mut acc = first.clone();
                for l in rest {
                    if acc.is_empty() {
                        break;
                    }
                    acc = acc.and(l);
                }
                acc
            }
        }
    }

    /// Restrict to positions within `window`.
    pub fn clip(&self, window: PosRange) -> PosList {
        match self {
            PosList::Ranges(r) => PosList::Ranges(r.clip(window)),
            PosList::Bitmap(b) => {
                let range = b.covering().intersect(&window);
                let mut out = Bitmap::zeros(range);
                for p in range.iter() {
                    if b.get(p) {
                        out.set(p);
                    }
                }
                PosList::Bitmap(out)
            }
            PosList::Explicit(v) => PosList::Explicit(v.clip(window)),
        }
    }
}

/// Unified iterator over the positions of any [`PosList`] representation.
#[derive(Debug)]
pub enum PosListIter<'a> {
    /// Iterating a range list.
    Ranges {
        /// Normalized ranges being walked.
        ranges: &'a [PosRange],
        /// Index of the current range.
        idx: usize,
        /// Next position within the current range (0 = use range start).
        cur: Pos,
    },
    /// Iterating a bitmap.
    Bitmap(BitmapIter<'a>),
    /// Iterating an explicit list.
    Explicit {
        /// The sorted positions.
        slice: &'a [Pos],
        /// Next index to yield.
        idx: usize,
    },
}

impl Iterator for PosListIter<'_> {
    type Item = Pos;

    #[inline]
    fn next(&mut self) -> Option<Pos> {
        match self {
            PosListIter::Ranges { ranges, idx, cur } => loop {
                let r = ranges.get(*idx)?;
                let p = if *cur < r.start { r.start } else { *cur };
                if p < r.end {
                    *cur = p + 1;
                    return Some(p);
                }
                *idx += 1;
                *cur = 0;
            },
            PosListIter::Bitmap(it) => it.next(),
            PosListIter::Explicit { slice, idx } => {
                let p = slice.get(*idx).copied()?;
                *idx += 1;
                Some(p)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(s: u64, e: u64) -> PosRange {
        PosRange::new(s, e)
    }

    fn ranges(v: Vec<(u64, u64)>) -> PosList {
        PosList::Ranges(RangeList::from_ranges(
            v.into_iter().map(|(s, e)| r(s, e)).collect(),
        ))
    }

    fn bitmap(cov: (u64, u64), pos: Vec<u64>) -> PosList {
        PosList::Bitmap(Bitmap::from_positions(r(cov.0, cov.1), pos))
    }

    fn explicit(pos: Vec<u64>) -> PosList {
        PosList::Explicit(PosVec::from_vec(pos))
    }

    #[test]
    fn and_repr_rule() {
        // ranges ∧ ranges → ranges
        let a = ranges(vec![(0, 10)]);
        let b = ranges(vec![(5, 15)]);
        assert_eq!(a.and(&b).repr(), Repr::Ranges);
        // ranges ∧ bitmap → bitmap
        let c = bitmap((0, 20), vec![5, 6, 12]);
        assert_eq!(a.and(&c).repr(), Repr::Bitmap);
        // bitmap ∧ bitmap → bitmap
        assert_eq!(c.and(&c).repr(), Repr::Bitmap);
        // explicit ∧ explicit → explicit
        let d = explicit(vec![1, 5]);
        assert_eq!(d.and(&d).repr(), Repr::Explicit);
    }

    #[test]
    fn and_semantics_across_reprs() {
        let positions_a = vec![1u64, 5, 6, 12, 30, 64, 65];
        let positions_b = vec![5u64, 6, 13, 30, 65, 99];
        let expected = vec![5u64, 6, 30, 65];

        let reprs_a = [
            explicit(positions_a.clone()),
            bitmap((0, 128), positions_a.clone()),
            PosList::Explicit(PosVec::from_vec(positions_a.clone())).to_ranges_list(),
        ];
        let reprs_b = [
            explicit(positions_b.clone()),
            bitmap((0, 128), positions_b.clone()),
            PosList::Explicit(PosVec::from_vec(positions_b.clone())).to_ranges_list(),
        ];
        for a in &reprs_a {
            for b in &reprs_b {
                assert_eq!(
                    a.and(b).to_vec(),
                    expected,
                    "{:?} ∧ {:?}",
                    a.repr(),
                    b.repr()
                );
            }
        }
    }

    #[test]
    fn or_semantics_across_reprs() {
        let pa = vec![1u64, 5, 64];
        let pb = vec![5u64, 70];
        let expected = vec![1u64, 5, 64, 70];
        let reprs_a = [
            explicit(pa.clone()),
            bitmap((0, 80), pa.clone()),
            PosList::Explicit(PosVec::from_vec(pa.clone())).to_ranges_list(),
        ];
        let reprs_b = [
            explicit(pb.clone()),
            bitmap((0, 80), pb.clone()),
            PosList::Explicit(PosVec::from_vec(pb.clone())).to_ranges_list(),
        ];
        for a in &reprs_a {
            for b in &reprs_b {
                assert_eq!(
                    a.or(b).to_vec(),
                    expected,
                    "{:?} ∨ {:?}",
                    a.repr(),
                    b.repr()
                );
            }
        }
    }

    #[test]
    fn and_many_identity_and_shortcircuit() {
        let cov = r(0, 100);
        assert_eq!(PosList::and_many(&[], cov).count(), 100);
        let a = ranges(vec![(0, 50)]);
        let b = ranges(vec![(60, 70)]);
        let c = ranges(vec![(0, 100)]);
        // a ∧ b is empty; c must not resurrect anything.
        assert!(PosList::and_many(&[a, b, c], cov).is_empty());
    }

    #[test]
    fn conversions_roundtrip() {
        let p = vec![0u64, 1, 2, 10, 63, 64, 65, 200];
        let e = explicit(p.clone());
        assert_eq!(e.to_ranges().iter().collect::<Vec<_>>(), p);
        assert_eq!(e.to_bitmap(r(0, 201)).iter().collect::<Vec<_>>(), p);
        assert_eq!(e.to_explicit().as_slice(), &p[..]);
        let b = bitmap((0, 256), p.clone());
        assert_eq!(b.to_ranges().iter().collect::<Vec<_>>(), p);
        assert_eq!(b.to_explicit().as_slice(), &p[..]);
    }

    #[test]
    fn paper_bitmap_example() {
        // §2.1.1: position range 11-20 (inclusive), bit-vector 0111010001
        // indicates 12, 13, 14, 16, 20 passed.
        let cov = r(11, 21);
        let bits = [
            false, true, true, true, false, true, false, false, false, true,
        ];
        let mut bm = Bitmap::zeros(cov);
        for (i, &on) in bits.iter().enumerate() {
            if on {
                bm.set(11 + i as u64);
            }
        }
        let pl = PosList::Bitmap(bm);
        assert_eq!(pl.to_vec(), vec![12, 13, 14, 16, 20]);
    }

    #[test]
    fn clip_all_reprs() {
        let p = vec![1u64, 5, 10, 15, 20];
        for list in [
            explicit(p.clone()),
            bitmap((0, 32), p.clone()),
            PosList::Explicit(PosVec::from_vec(p.clone())).to_ranges_list(),
        ] {
            assert_eq!(
                list.clip(r(5, 16)).to_vec(),
                vec![5, 10, 15],
                "{:?}",
                list.repr()
            );
        }
    }

    #[test]
    fn num_runs_counts_by_repr() {
        let rl = ranges(vec![(0, 100), (200, 300)]);
        assert_eq!(rl.num_runs(), 2);
        let bm = bitmap((0, 10), vec![1, 2, 3]);
        assert_eq!(bm.num_runs(), 3);
    }

    #[test]
    fn full_and_empty() {
        let f = PosList::full(r(5, 10));
        assert_eq!(f.count(), 5);
        assert!(PosList::empty().is_empty());
        assert!(!f.contains(4));
        assert!(f.contains(5));
    }

    impl PosList {
        /// Test helper: convert to the ranges representation as a PosList.
        fn to_ranges_list(&self) -> PosList {
            PosList::Ranges(self.to_ranges())
        }
    }
}
