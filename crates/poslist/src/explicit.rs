//! Explicit (listed) position representation.
//!
//! A sorted vector of positions. The paper's "listed positions" form is
//! "particularly useful when few positions inside a multi-column are
//! valid" — the sparse case where a bitmap wastes space and a range list
//! degenerates to one range per position.

use matstrat_common::{Pos, PosRange};

/// A sorted, duplicate-free vector of positions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PosVec {
    positions: Vec<Pos>,
}

impl PosVec {
    /// The empty list.
    pub fn empty() -> PosVec {
        PosVec {
            positions: Vec::new(),
        }
    }

    /// Build from an arbitrary vector: sorts and deduplicates.
    pub fn from_vec(mut positions: Vec<Pos>) -> PosVec {
        positions.sort_unstable();
        positions.dedup();
        PosVec { positions }
    }

    /// Build from a vector that is already sorted and duplicate-free.
    /// Debug-asserts the invariant.
    pub fn from_sorted(positions: Vec<Pos>) -> PosVec {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions not sorted/unique"
        );
        PosVec { positions }
    }

    /// The underlying sorted positions.
    #[inline]
    pub fn as_slice(&self) -> &[Pos] {
        &self.positions
    }

    /// Consume into the underlying vector.
    pub fn into_vec(self) -> Vec<Pos> {
        self.positions
    }

    /// Number of positions.
    #[inline]
    pub fn count(&self) -> u64 {
        self.positions.len() as u64
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Smallest range covering all positions.
    pub fn covering(&self) -> PosRange {
        match (self.positions.first(), self.positions.last()) {
            (Some(&f), Some(&l)) => PosRange::new(f, l + 1),
            _ => PosRange::empty(),
        }
    }

    /// Whether `pos` is present (binary search).
    pub fn contains(&self, pos: Pos) -> bool {
        self.positions.binary_search(&pos).is_ok()
    }

    /// Set intersection by linear merge.
    pub fn intersect(&self, other: &PosVec) -> PosVec {
        let (a, b) = (&self.positions, &other.positions);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        PosVec { positions: out }
    }

    /// Set union by linear merge.
    pub fn union(&self, other: &PosVec) -> PosVec {
        let (a, b) = (&self.positions, &other.positions);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        PosVec { positions: out }
    }

    /// Restrict to positions inside `window`.
    pub fn clip(&self, window: PosRange) -> PosVec {
        let lo = self.positions.partition_point(|&p| p < window.start);
        let hi = self.positions.partition_point(|&p| p < window.end);
        PosVec {
            positions: self.positions[lo..hi].to_vec(),
        }
    }

    /// Iterate over positions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Pos> + '_ {
        self.positions.iter().copied()
    }
}

impl FromIterator<Pos> for PosVec {
    fn from_iter<T: IntoIterator<Item = Pos>>(iter: T) -> PosVec {
        PosVec::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_sorts_dedups() {
        let v = PosVec::from_vec(vec![5, 1, 3, 3, 1]);
        assert_eq!(v.as_slice(), &[1, 3, 5]);
        assert_eq!(v.count(), 3);
    }

    #[test]
    fn contains_and_covering() {
        let v = PosVec::from_vec(vec![2, 8, 15]);
        assert!(v.contains(8));
        assert!(!v.contains(9));
        assert_eq!(v.covering(), PosRange::new(2, 16));
        assert_eq!(PosVec::empty().covering(), PosRange::empty());
    }

    #[test]
    fn intersect_merge() {
        let a = PosVec::from_vec(vec![1, 3, 5, 7, 9]);
        let b = PosVec::from_vec(vec![3, 4, 5, 10]);
        assert_eq!(a.intersect(&b).as_slice(), &[3, 5]);
        assert!(a.intersect(&PosVec::empty()).is_empty());
    }

    #[test]
    fn union_merge() {
        let a = PosVec::from_vec(vec![1, 5, 9]);
        let b = PosVec::from_vec(vec![2, 5, 12]);
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 5, 9, 12]);
    }

    #[test]
    fn clip_window() {
        let a = PosVec::from_vec(vec![1, 5, 9, 14]);
        assert_eq!(a.clip(PosRange::new(5, 14)).as_slice(), &[5, 9]);
        assert!(a.clip(PosRange::new(100, 200)).is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let v: PosVec = [9u64, 1, 9, 4].into_iter().collect();
        assert_eq!(v.as_slice(), &[1, 4, 9]);
    }
}
