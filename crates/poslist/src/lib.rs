//! Position lists: the currency of late materialization.
//!
//! When a predicate is applied to a column, the result is the *set of
//! positions* whose values passed. Late-materialization plans ship these
//! sets between operators instead of constructed tuples, intersect them
//! with word-wise AND operations, and only fetch values at the end.
//!
//! The paper (§2.1.1, §3.3) uses three concrete representations, all
//! provided here:
//!
//! * **position ranges** `[start, end)` — ideal for predicates over sorted
//!   columns, where matches are contiguous; intersecting two range lists is
//!   a merge;
//! * **bit-maps** — one bit per position in a covering range; 64 positions
//!   are intersected per machine instruction;
//! * **explicit lists** — sorted vectors of positions, best when very few
//!   positions survive.
//!
//! [`PosList`] unifies the three and implements the paper's AND
//! representation rule: range inputs produce range output, any other mix
//! produces a bit-map.

pub mod bitmap;
pub mod builder;
pub mod explicit;
pub mod ranges;

mod poslist;

pub use bitmap::Bitmap;
pub use builder::PosListBuilder;
pub use explicit::PosVec;
pub use poslist::{PosList, PosListIter, Repr};
pub use ranges::RangeList;
