//! Model constants (Table 2 of the paper).

/// CPU and I/O constants, in microseconds (and blocks for `PF`).
///
/// Defaults are the paper's Table 2, measured on a 3.8 GHz Pentium 4 in
/// 2006. Run [`crate::calibrate::calibrate`] to re-measure the CPU
/// constants on the current host; the disk constants stay synthetic
/// because the simulated disk prices cold I/O with exactly these numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constants {
    /// Block-iterator `getNext()` call (µs).
    pub bic: f64,
    /// Tuple-iterator `getNext()` call (µs).
    pub tic_tup: f64,
    /// Column-iterator `getNext()` call (µs).
    pub tic_col: f64,
    /// Function call (µs).
    pub fc: f64,
    /// Prefetch size in blocks.
    pub pf: f64,
    /// Disk seek (µs).
    pub seek: f64,
    /// One 64 KB block read (µs).
    pub read: f64,
    /// Processor word size in bits, for bit-list AND costs. The paper
    /// says "32 (or 64 depending on processor word size)"; modern hosts
    /// use 64.
    pub word_bits: f64,
}

impl Constants {
    /// Table 2 of the paper.
    pub fn paper() -> Constants {
        Constants {
            bic: 0.020,
            tic_tup: 0.065,
            tic_col: 0.014,
            fc: 0.009,
            pf: 1.0,
            seek: 2500.0,
            read: 1000.0,
            word_bits: 32.0,
        }
    }

    /// Paper disk constants with 64-bit words (our hosts).
    pub fn host_defaults() -> Constants {
        Constants {
            word_bits: 64.0,
            ..Constants::paper()
        }
    }
}

impl Default for Constants {
    fn default() -> Constants {
        Constants::host_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table2() {
        let c = Constants::paper();
        assert_eq!(c.bic, 0.020);
        assert_eq!(c.tic_tup, 0.065);
        assert_eq!(c.tic_col, 0.014);
        assert_eq!(c.fc, 0.009);
        assert_eq!(c.pf, 1.0);
        assert_eq!(c.seek, 2500.0);
        assert_eq!(c.read, 1000.0);
    }

    #[test]
    fn host_defaults_use_64bit_words() {
        assert_eq!(Constants::host_defaults().word_bits, 64.0);
        assert_eq!(Constants::default().word_bits, 64.0);
    }
}
