//! Analytical cost model for materialization strategies (§3 of the paper).
//!
//! The model prices each operator of a query plan in microseconds of CPU
//! and I/O, using the constants of Table 1/2:
//!
//! | symbol | meaning |
//! |---|---|
//! | `\|Ci\|` | number of disk blocks in column i |
//! | `\|\|Ci\|\|` | number of rows in column i |
//! | `\|\|POSLIST\|\|` | number of positions in a position list |
//! | `F` | fraction of the column's pages already in the buffer pool |
//! | `SF` | selectivity factor of a predicate |
//! | `BIC` | block-iterator `getNext()` CPU time |
//! | `TIC_TUP` | tuple-iterator `getNext()` CPU time |
//! | `TIC_COL` | column-iterator `getNext()` CPU time |
//! | `FC` | function-call time |
//! | `PF` | prefetch size in blocks |
//! | `SEEK` | disk seek time |
//! | `READ` | one-block read time |
//! | `RL` | average run length (1 if uncompressed) |
//!
//! [`ops`] implements the per-operator formulas (DS cases 1–4, AND,
//! MERGE, SPC) exactly as printed in the paper's Figures 1–6; [`plans`]
//! composes them into end-to-end estimates for the four strategies on the
//! paper's selection and aggregation queries; [`calibrate`] re-measures
//! the CPU constants on the host, the way Table 2 was produced ("running
//! the small segments of code that only performed the variable in
//! question").

pub mod calibrate;
pub mod constants;
pub mod ops;
pub mod plans;

pub use constants::Constants;
pub use ops::{AndInput, ColumnParams};
pub use plans::{CostBreakdown, CostModel, JoinCost, JoinInnerKind, JoinParams, QueryParams};
