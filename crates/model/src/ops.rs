//! Per-operator cost formulas (Figures 1–6 of the paper).
//!
//! Every function returns `(cpu_us, io_us)` or a single `f64` of CPU µs
//! for streaming operators that never touch disk. The formulas are
//! transcriptions of the paper's cost figures; step numbers in comments
//! refer to the pseudocode line numbers printed alongside each figure.

use crate::constants::Constants;

/// Parameters of one column access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnParams {
    /// `|Ci|`: number of 64 KB blocks.
    pub blocks: f64,
    /// `||Ci||`: number of rows.
    pub rows: f64,
    /// `RL`: average run length of the stored encoding (1 if
    /// uncompressed).
    pub run_len: f64,
    /// `F`: fraction of the column's pages already in the buffer pool.
    pub resident: f64,
    /// `W`: bytes per stored code when dictionary-encoded (1, 2 or 4),
    /// or 8 — the decoded value width — otherwise. The decode-avoidance
    /// term: operators running in the code domain touch `W` bytes per
    /// unit instead of 8.
    pub code_width: f64,
    /// Whether every block of the column shares one sorted dictionary,
    /// making the column eligible for code-keyed joins.
    pub shared_dict: bool,
}

impl ColumnParams {
    /// Convenience constructor with `F = 0` (cold) and no dictionary.
    pub fn cold(blocks: f64, rows: f64, run_len: f64) -> ColumnParams {
        ColumnParams {
            blocks,
            rows,
            run_len,
            resident: 0.0,
            code_width: 8.0,
            shared_dict: false,
        }
    }

    /// The paper's standard I/O term:
    /// `(|Ci|/PF * SEEK + |Ci| * READ) * (1 - F)`.
    pub fn io_full_scan(&self, c: &Constants) -> f64 {
        (self.blocks / c.pf * c.seek + self.blocks * c.read) * (1.0 - self.resident)
    }

    /// Multiplier on the per-unit column-iterator step when the operator
    /// stays in the code domain: a `W`-byte code costs `W/8` of touching
    /// a decoded 8-byte value. 1 for undictionaried columns.
    pub fn code_cpu_factor(&self) -> f64 {
        (self.code_width / 8.0).clamp(0.125, 1.0)
    }
}

/// One input to the AND operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AndInput {
    /// `||inpos_i||`: number of positions in the list.
    pub positions: f64,
    /// `RL_p`: average run length of the position list (ranges), or 1
    /// for unencoded lists.
    pub run_len: f64,
    /// Whether the list is a bit-string (then the effective unit is the
    /// machine word, not the run).
    pub is_bitstring: bool,
}

impl AndInput {
    /// Number of iterator steps the AND pays for this input:
    /// `||inpos||/RL_p` for ranges, `||inpos||/word` for bit-strings.
    fn units(&self, c: &Constants) -> f64 {
        if self.is_bitstring {
            self.positions / c.word_bits
        } else {
            self.positions / self.run_len.max(1.0)
        }
    }
}

/// DS Case 1 (Figure 1): scan + predicate → positions.
///
/// `CPU = |C|*BIC + ||C||*(TICCOL + FC)/RL + SF*||C||*FC`
pub fn ds1(col: &ColumnParams, sf: f64, c: &Constants) -> (f64, f64) {
    let cpu = col.blocks * c.bic                                   // (1)
        + col.rows * (c.tic_col + c.fc) / col.run_len.max(1.0)     // (3,4)
        + sf * col.rows * c.fc; // (5)
    (cpu, col.io_full_scan(c)) // (2)
}

/// DS Case 1 run entirely in the **code domain** — the compressed-
/// execution variant of [`ds1`]. The per-unit decode call (`FC`) drops
/// out and the column-iterator step touches a `code_width`-byte code
/// instead of an 8-byte value; the emit term (`SF*||C||*FC` — hash
/// inserts, position pushes) is unchanged, as is the I/O: the same
/// blocks are read either way.
///
/// `CPU = |C|*BIC + ||C||*TICCOL*(W/8)/RL + SF*||C||*FC`
pub fn ds1_code(col: &ColumnParams, sf: f64, c: &Constants) -> (f64, f64) {
    let cpu = col.blocks * c.bic
        + col.rows * c.tic_col * col.code_cpu_factor() / col.run_len.max(1.0)
        + sf * col.rows * c.fc;
    (cpu, col.io_full_scan(c))
}

/// DS Case 2: scan + predicate → (position, value) pairs.
///
/// Same as Case 1 except step (5) pays `TICTUP + FC` per emitted pair.
pub fn ds2(col: &ColumnParams, sf: f64, c: &Constants) -> (f64, f64) {
    let cpu = col.blocks * c.bic
        + col.rows * (c.tic_col + c.fc) / col.run_len.max(1.0)
        + sf * col.rows * (c.tic_tup + c.fc);
    (cpu, col.io_full_scan(c))
}

/// DS Case 3 (Figure 2): position list → values.
///
/// `CPU = |C|*BIC + ||POSLIST||/RLp*TICCOL + ||POSLIST||/RLp*(TICCOL+FC)`
///
/// `positions` is `||POSLIST||` and `pos_run_len` its `RL_p`.
/// `reaccess = true` models the multi-column optimization (§3.6): the
/// column was already read earlier in the plan, so `F = 1` and I/O → 0.
/// Otherwise I/O is `(|C|/PF*SEEK + SF*|C|*READ) * (1-F)` — only the
/// fraction of blocks containing matches is read (localized matches).
pub fn ds3(
    col: &ColumnParams,
    positions: f64,
    pos_run_len: f64,
    sf: f64,
    reaccess: bool,
    c: &Constants,
) -> (f64, f64) {
    let steps = positions / pos_run_len.max(1.0);
    let cpu = col.blocks * c.bic            // (1)
        + steps * c.tic_col                 // (3)
        + steps * (c.tic_col + c.fc); // (4)
    let io = if reaccess {
        0.0
    } else {
        (col.blocks / c.pf * c.seek + sf * col.blocks * c.read) * (1.0 - col.resident)
    };
    (cpu, io)
}

/// DS Case 4 (Figure 3): EM tuples + column + predicate → wider tuples.
///
/// `CPU = |C|*BIC + ||EM||*TICTUP + ||EM||*((FC+TICTUP)+FC)
///        + SF*||EM||*TICTUP`
pub fn ds4(col: &ColumnParams, em_tuples: f64, sf: f64, c: &Constants) -> (f64, f64) {
    let cpu = col.blocks * c.bic                       // (1)
        + em_tuples * c.tic_tup                        // (3)
        + em_tuples * ((c.fc + c.tic_tup) + c.fc)      // (4)
        + sf * em_tuples * c.tic_tup; // (5)
    (cpu, col.io_full_scan(c)) // (2)
}

/// AND operator (Figure 4), all three cases. Streaming: CPU only.
///
/// `COST = Σ TICCOL*units_i + M*(k-1)*FC + M*TICCOL*FC` where
/// `M = max(units_i)` and `units_i` is runs for range inputs or words
/// for bit-string inputs (Case 2 substitutes `||inpos||/word`).
pub fn and_cost(inputs: &[AndInput], c: &Constants) -> f64 {
    if inputs.len() < 2 {
        return 0.0;
    }
    let k = inputs.len() as f64;
    let m = inputs.iter().map(|i| i.units(c)).fold(0.0_f64, f64::max);
    let step1: f64 = inputs.iter().map(|i| c.tic_col * i.units(c)).sum();
    step1 + m * (k - 1.0) * c.fc + m * c.tic_col * c.fc
}

/// MERGE operator (Figure 5): k value streams → k-ary tuples.
///
/// `COST = ||VAL||*k*FC + ||VAL||*k*FC` (vector access + array produce).
pub fn merge_cost(values_per_col: f64, k: f64, c: &Constants) -> f64 {
    values_per_col * k * c.fc + values_per_col * k * c.fc
}

/// SPC operator (Figure 6): scan k columns, apply predicates, construct
/// tuples at the leaf (the EM-parallel leaf).
///
/// ```text
/// CPU = Σ_i |Ci|*BIC                               (2)
///     + Σ_i ||Ci||*FC*Π_{j<i}(SFj)                 (4)
///     + ||Ck||*TICTUP*Π_{j=1..k}(SFj)              (5)
/// IO  = Σ_i (|Ci|/PF*SEEK + |Ci|*READ)             (3)
/// ```
pub fn spc(cols: &[ColumnParams], sfs: &[f64], c: &Constants) -> (f64, f64) {
    assert_eq!(cols.len(), sfs.len());
    let mut cpu = 0.0;
    let mut io = 0.0;
    let mut sel_prefix = 1.0; // Π_{j<i} SF_j
    for (col, &sf) in cols.iter().zip(sfs) {
        cpu += col.blocks * c.bic; // (2)
        cpu += col.rows * c.fc * sel_prefix; // (4)
        io += col.io_full_scan(c); // (3)
        sel_prefix *= sf;
    }
    let last = cols.last().expect("spc needs at least one column");
    cpu += last.rows * c.tic_tup * sel_prefix; // (5), sel_prefix = Π all SF
    (cpu, io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> Constants {
        Constants::paper()
    }

    fn col(blocks: f64, rows: f64, rl: f64) -> ColumnParams {
        ColumnParams::cold(blocks, rows, rl)
    }

    #[test]
    fn ds1_formula_hand_check() {
        // |C|=5, ||C||=1000, RL=10, SF=0.5
        let (cpu, io) = ds1(&col(5.0, 1000.0, 10.0), 0.5, &c());
        let expected_cpu = 5.0 * 0.020 + 1000.0 * (0.014 + 0.009) / 10.0 + 0.5 * 1000.0 * 0.009;
        assert!((cpu - expected_cpu).abs() < 1e-9);
        let expected_io = 5.0 / 1.0 * 2500.0 + 5.0 * 1000.0;
        assert!((io - expected_io).abs() < 1e-9);
    }

    #[test]
    fn ds2_costs_more_than_ds1() {
        let p = col(5.0, 1000.0, 1.0);
        let (cpu1, _) = ds1(&p, 0.5, &c());
        let (cpu2, _) = ds2(&p, 0.5, &c());
        assert!(
            cpu2 > cpu1,
            "pair construction must cost more than positions"
        );
        // Difference is exactly SF*||C||*(TICTUP - FC)... no:
        // ds1 step5 = SF*N*FC; ds2 step5 = SF*N*(TICTUP+FC).
        assert!((cpu2 - cpu1 - 0.5 * 1000.0 * 0.065).abs() < 1e-9);
    }

    #[test]
    fn ds3_reaccess_has_zero_io() {
        let p = col(5.0, 1000.0, 1.0);
        let (_, io) = ds3(&p, 100.0, 1.0, 0.1, true, &c());
        assert_eq!(io, 0.0);
        let (_, io_cold) = ds3(&p, 100.0, 1.0, 0.1, false, &c());
        // (5 seeks * 2500) + 0.1*5 blocks * 1000
        assert!((io_cold - (5.0 * 2500.0 + 0.5 * 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn ds3_cpu_scales_with_poslist_runs_not_rows() {
        let p = col(100.0, 1_000_000.0, 1.0);
        let (cpu_fine, _) = ds3(&p, 10_000.0, 1.0, 0.01, true, &c());
        let (cpu_runs, _) = ds3(&p, 10_000.0, 100.0, 0.01, true, &c());
        assert!(cpu_runs < cpu_fine, "range-encoded positions are cheaper");
    }

    #[test]
    fn ds4_formula_hand_check() {
        let (cpu, _) = ds4(&col(5.0, 1000.0, 1.0), 200.0, 0.5, &c());
        let expected =
            5.0 * 0.020 + 200.0 * 0.065 + 200.0 * ((0.009 + 0.065) + 0.009) + 0.5 * 200.0 * 0.065;
        assert!((cpu - expected).abs() < 1e-9);
    }

    #[test]
    fn and_ranges_vs_bitstrings() {
        let cc = c();
        // Two range lists of 1000 positions with run length 100: 10 units each.
        let ranges = and_cost(
            &[
                AndInput {
                    positions: 1000.0,
                    run_len: 100.0,
                    is_bitstring: false,
                },
                AndInput {
                    positions: 1000.0,
                    run_len: 100.0,
                    is_bitstring: false,
                },
            ],
            &cc,
        );
        // Bit-strings over the same positions: 1000/32 = 31.25 units each.
        let bits = and_cost(
            &[
                AndInput {
                    positions: 1000.0,
                    run_len: 1.0,
                    is_bitstring: true,
                },
                AndInput {
                    positions: 1000.0,
                    run_len: 1.0,
                    is_bitstring: true,
                },
            ],
            &cc,
        );
        // Unencoded singleton lists: 1000 units each.
        let lists = and_cost(
            &[
                AndInput {
                    positions: 1000.0,
                    run_len: 1.0,
                    is_bitstring: false,
                },
                AndInput {
                    positions: 1000.0,
                    run_len: 1.0,
                    is_bitstring: false,
                },
            ],
            &cc,
        );
        assert!(ranges < bits, "long runs beat bit-strings");
        assert!(bits < lists, "bit-strings beat singleton lists");
    }

    #[test]
    fn and_fewer_than_two_inputs_is_free() {
        assert_eq!(and_cost(&[], &c()), 0.0);
        assert_eq!(
            and_cost(
                &[AndInput {
                    positions: 10.0,
                    run_len: 1.0,
                    is_bitstring: false
                }],
                &c()
            ),
            0.0
        );
    }

    #[test]
    fn merge_linear_in_values_and_arity() {
        let cc = c();
        let base = merge_cost(100.0, 2.0, &cc);
        assert!((merge_cost(200.0, 2.0, &cc) - 2.0 * base).abs() < 1e-9);
        assert!((merge_cost(100.0, 4.0, &cc) - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn spc_predicate_order_matters() {
        let cc = c();
        let c1 = col(10.0, 10_000.0, 1.0);
        let c2 = col(10.0, 10_000.0, 1.0);
        // Selective predicate first: later column pays fewer FC steps.
        let (cpu_sel_first, _) = spc(&[c1, c2], &[0.01, 0.9], &cc);
        let (cpu_sel_last, _) = spc(&[c1, c2], &[0.9, 0.01], &cc);
        assert!(cpu_sel_first < cpu_sel_last);
    }

    #[test]
    fn spc_io_reads_all_columns_fully() {
        let cc = c();
        let (_, io) = spc(
            &[col(10.0, 100.0, 1.0), col(20.0, 100.0, 1.0)],
            &[0.5, 0.5],
            &cc,
        );
        let expected = (10.0 * 2500.0 + 10.0 * 1000.0) + (20.0 * 2500.0 + 20.0 * 1000.0);
        assert!((io - expected).abs() < 1e-9);
    }

    #[test]
    fn ds1_code_drops_decode_and_narrows_the_iterator_step() {
        let cc = c();
        let mut p = col(5.0, 1000.0, 10.0);
        p.code_width = 1.0; // one-byte dictionary codes
        let (cpu, io) = ds1_code(&p, 0.5, &cc);
        // |C|*BIC + ||C||*TICCOL*(1/8)/RL + SF*||C||*FC — no FC decode
        // per unit.
        let expected = 5.0 * 0.020 + 1000.0 * 0.014 * 0.125 / 10.0 + 0.5 * 1000.0 * 0.009;
        assert!((cpu - expected).abs() < 1e-9);
        // Same blocks read either way.
        let (_, io_value) = ds1(&p, 0.5, &cc);
        assert!((io - io_value).abs() < 1e-9);
        // The code path is strictly cheaper than the decoded pass.
        let (cpu_value, _) = ds1(&p, 0.5, &cc);
        assert!(cpu < cpu_value);
    }

    #[test]
    fn code_cpu_factor_by_width() {
        let mut p = col(1.0, 1.0, 1.0);
        assert_eq!(p.code_cpu_factor(), 1.0, "undictionaried = decoded width");
        p.code_width = 1.0;
        assert_eq!(p.code_cpu_factor(), 0.125);
        p.code_width = 2.0;
        assert_eq!(p.code_cpu_factor(), 0.25);
        p.code_width = 4.0;
        assert_eq!(p.code_cpu_factor(), 0.5);
    }

    #[test]
    fn resident_fraction_scales_io() {
        let cc = c();
        let mut p = col(10.0, 100.0, 1.0);
        p.resident = 0.75;
        let (_, io) = ds1(&p, 0.5, &cc);
        let (_, io_cold) = ds1(&col(10.0, 100.0, 1.0), 0.5, &cc);
        assert!((io - 0.25 * io_cold).abs() < 1e-9);
    }
}
