//! Host calibration of the CPU constants.
//!
//! Table 2 was produced by "running the small segments of code that only
//! performed the variable in question". This module does the same on the
//! current machine: tight loops over the primitive operations, timed with
//! `std::time::Instant`, divided by iteration count. Results are
//! best-effort (modern CPUs make single-operation timing noisy) but land
//! in the right order of magnitude, which is all the model needs — its
//! predictions are shapes and crossover points, not absolute times.

use std::hint::black_box;
use std::time::Instant;

use crate::constants::Constants;

/// A function call whose inlining is suppressed, so a call round-trip is
/// actually measured (the paper's `FC`).
#[inline(never)]
fn opaque_add(a: i64, b: i64) -> i64 {
    black_box(a.wrapping_add(b))
}

fn time_per_iter(iters: u64, f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Measure `FC`: cost of a non-inlined function call (µs).
pub fn measure_fc(iters: u64) -> f64 {
    time_per_iter(iters, || {
        let mut acc = 0i64;
        for i in 0..iters {
            acc = opaque_add(acc, i as i64);
        }
        black_box(acc);
    })
}

/// Measure `TIC_COL`: one step of an iterator over a contiguous column
/// of values (µs).
pub fn measure_tic_col(iters: u64) -> f64 {
    let data: Vec<i64> = (0..iters as i64).collect();
    time_per_iter(iters, || {
        let mut acc = 0i64;
        for &v in black_box(&data) {
            acc = acc.wrapping_add(v);
        }
        black_box(acc);
    })
}

/// Measure `TIC_TUP`: one step of an iterator over wide tuples, touching
/// multiple fields per step (µs).
pub fn measure_tic_tup(iters: u64) -> f64 {
    let data: Vec<(u64, i64, i64, i64)> = (0..iters)
        .map(|i| (i, i as i64, (i * 3) as i64, (i * 7) as i64))
        .collect();
    time_per_iter(iters, || {
        let mut acc = 0i64;
        for t in black_box(&data) {
            acc = acc
                .wrapping_add(t.0 as i64)
                .wrapping_add(t.1)
                .wrapping_add(t.2)
                .wrapping_add(t.3);
        }
        black_box(acc);
    })
}

/// Measure `BIC`: overhead of advancing a block iterator — a dynamic
/// dispatch plus bounds bookkeeping per step (µs).
pub fn measure_bic(iters: u64) -> f64 {
    trait Next {
        fn next_block(&mut self) -> Option<u64>;
    }
    struct Counter {
        at: u64,
        end: u64,
    }
    impl Next for Counter {
        fn next_block(&mut self) -> Option<u64> {
            if self.at < self.end {
                self.at += 1;
                Some(self.at)
            } else {
                None
            }
        }
    }
    // `black_box` keeps the concrete type opaque so the virtual call is
    // actually dispatched (otherwise LLVM devirtualizes and the loop
    // measures nothing).
    let mut it: Box<dyn Next> = black_box(Box::new(Counter { at: 0, end: iters }));
    time_per_iter(iters, || {
        let mut acc = 0u64;
        while let Some(v) = it.next_block() {
            acc = acc.wrapping_add(v);
        }
        black_box(acc);
    })
}

/// Re-measure the CPU constants on this host, keeping the synthetic disk
/// constants (SEEK/READ/PF) from `base`.
pub fn calibrate(base: Constants) -> Constants {
    const N: u64 = 2_000_000;
    // Warm up the frequency governor.
    black_box(measure_tic_col(N / 4));
    Constants {
        bic: measure_bic(N).max(1e-6),
        tic_tup: measure_tic_tup(N).max(1e-6),
        tic_col: measure_tic_col(N).max(1e-6),
        fc: measure_fc(N).max(1e-6),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_positive_and_sane() {
        // Loose sanity bounds: each primitive costs between 0.01ns and 1µs.
        for v in [
            measure_fc(100_000),
            measure_tic_col(100_000),
            measure_tic_tup(100_000),
            measure_bic(100_000),
        ] {
            assert!(v > 0.0, "measurement must be positive");
            assert!(v < 1.0, "no primitive should cost a microsecond: {v}");
        }
    }

    #[test]
    fn calibrate_keeps_disk_constants() {
        let base = Constants::paper();
        let cal = calibrate(base);
        assert_eq!(cal.seek, base.seek);
        assert_eq!(cal.read, base.read);
        assert_eq!(cal.pf, base.pf);
        assert_eq!(cal.word_bits, base.word_bits);
        assert!(cal.fc > 0.0 && cal.tic_col > 0.0 && cal.tic_tup > 0.0 && cal.bic > 0.0);
    }

    #[test]
    fn tuple_iteration_costs_at_least_column_iteration() {
        // The defining relation behind the paper's constants: touching a
        // wide tuple per step costs no less than touching one column
        // value. (Equality is possible on very fast hosts; allow slack.)
        let col = measure_tic_col(500_000);
        let tup = measure_tic_tup(500_000);
        assert!(
            tup > col * 0.8,
            "tic_tup {tup} should not be far below tic_col {col}"
        );
    }
}
