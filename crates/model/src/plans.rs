//! Whole-plan cost composition for the four materialization strategies.
//!
//! The paper models the query
//!
//! ```sql
//! SELECT shipdate, linenum FROM lineitem
//! WHERE shipdate < X AND linenum < Y
//! ```
//!
//! (optionally with `GROUP BY shipdate, SUM(linenum)` on top) under the
//! four strategies of §3.5. [`CostModel`] composes the per-operator
//! formulas of [`crate::ops`] into end-to-end estimates; these are the
//! curves of Figure 10, and the decision procedure the paper's §6
//! suggests embedding in an optimizer.

use crate::constants::Constants;
use crate::ops::{and_cost, ds1, ds1_code, ds2, ds3, ds4, merge_cost, spc, AndInput, ColumnParams};

/// Granule runs each worker claims from the work-stealing scheduler
/// over a query's lifetime — mirrors the executor's chunking policy
/// (`FragmentPipeline::CHUNKS_PER_WORKER` in `matstrat-core`; the core
/// crate asserts the two stay equal). The scheduler's own cost is
/// `workers × CHUNKS_PER_WORKER` claim/steal bookkeeping operations, one
/// `FC` each.
pub const SCHED_CHUNKS_PER_WORKER: f64 = 16.0;

/// Which of the four strategy plans to price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// DS2 → DS4 chain: tuples grow one column at a time.
    EmPipelined,
    /// SPC leaf: full tuples constructed immediately.
    EmParallel,
    /// DS1 → DS3 chain: positions flow, later columns only touched at
    /// surviving positions.
    LmPipelined,
    /// DS1 ∥ DS1 → AND → DS3 ∥ DS3 → MERGE.
    LmParallel,
}

impl PlanKind {
    /// All four strategies.
    pub const ALL: [PlanKind; 4] = [
        PlanKind::EmPipelined,
        PlanKind::EmParallel,
        PlanKind::LmPipelined,
        PlanKind::LmParallel,
    ];

    /// Short name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::EmPipelined => "EM-pipelined",
            PlanKind::EmParallel => "EM-parallel",
            PlanKind::LmPipelined => "LM-pipelined",
            PlanKind::LmParallel => "LM-parallel",
        }
    }
}

/// CPU/IO split of an estimate, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// CPU microseconds.
    pub cpu_us: f64,
    /// I/O microseconds (cold-disk model).
    pub io_us: f64,
}

impl CostBreakdown {
    fn add(&mut self, (cpu, io): (f64, f64)) -> &mut Self {
        self.cpu_us += cpu;
        self.io_us += io;
        self
    }

    fn add_cpu(&mut self, cpu: f64) -> &mut Self {
        self.cpu_us += cpu;
        self
    }

    /// The estimate when the plan's CPU work is spread over `workers`
    /// granule-parallel threads: CPU divides (granules are independent,
    /// so the operator work splits evenly), I/O does not (the workers
    /// share one disk arm and one buffer pool, and a cold run still
    /// reads every block exactly once).
    pub fn with_workers(self, workers: usize) -> CostBreakdown {
        CostBreakdown {
            cpu_us: self.cpu_us / workers.max(1) as f64,
            io_us: self.io_us,
        }
    }

    /// Total microseconds.
    pub fn total_us(&self) -> f64 {
        self.cpu_us + self.io_us
    }

    /// Total milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_us() / 1000.0
    }
}

/// Parameters of the two-predicate selection/aggregation query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryParams {
    /// Row count `N` of the projection.
    pub n: f64,
    /// First predicate column (the paper's SHIPDATE).
    pub c1: ColumnParams,
    /// Second predicate column (the paper's LINENUM).
    pub c2: ColumnParams,
    /// Selectivity of the first predicate.
    pub sf1: f64,
    /// Selectivity of the second predicate.
    pub sf2: f64,
    /// `RL_p` of the position list DS1 emits for column 1.
    pub pos_run_len1: f64,
    /// `RL_p` of the position list DS1 emits for column 2.
    pub pos_run_len2: f64,
    /// Whether DS1 on column 1 emits a bit-string (bit-vector encoding).
    pub bitstring1: bool,
    /// Whether DS1 on column 2 emits a bit-string.
    pub bitstring2: bool,
    /// Whether column 2 supports DS3 (false for bit-vector encoding —
    /// disables LM-pipelined and forces a decompress on fetch).
    pub c2_supports_ds3: bool,
    /// Whether value fetch on column 1 must decompress the whole column
    /// (bit-vector encoding).
    pub c1_decompress_fetch: bool,
    /// Whether value fetch on column 2 must decompress the whole column.
    pub c2_decompress_fetch: bool,
    /// `true` for the aggregation query (GROUP BY c1, SUM(c2)).
    pub aggregated: bool,
    /// Number of groups the aggregation produces.
    pub num_groups: f64,
}

impl QueryParams {
    /// Plain selection query with sensible defaults: positions ungrouped
    /// (`RL_p` from the column run lengths), value encodings supporting
    /// DS3.
    pub fn selection(
        n: f64,
        c1: ColumnParams,
        c2: ColumnParams,
        sf1: f64,
        sf2: f64,
    ) -> QueryParams {
        QueryParams {
            n,
            c1,
            c2,
            sf1,
            sf2,
            pos_run_len1: c1.run_len,
            pos_run_len2: c2.run_len,
            bitstring1: false,
            bitstring2: false,
            c2_supports_ds3: true,
            c1_decompress_fetch: false,
            c2_decompress_fetch: false,
            aggregated: false,
            num_groups: 0.0,
        }
    }

    /// Rows surviving both predicates.
    pub fn out_rows(&self) -> f64 {
        self.n * self.sf1 * self.sf2
    }
}

/// The assembled analytical model.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    constants: Constants,
}

impl CostModel {
    /// Model with the given constants.
    pub fn new(constants: Constants) -> CostModel {
        CostModel { constants }
    }

    /// The constants in use.
    pub fn constants(&self) -> &Constants {
        &self.constants
    }

    /// Final consumption cost: iterate results, or aggregate them.
    ///
    /// * EM plans hand tuples to the consumer: the aggregator pays a
    ///   tuple-iterator step per input; a plain query pays one per output.
    /// * LM plans (aggregated) feed the aggregator columns directly:
    ///   it consumes value *runs* (`TICCOL + FC` per run, the operate-on-
    ///   compressed-data win) and only `num_groups` tuples are built.
    fn consume_em(&self, q: &QueryParams) -> f64 {
        let c = &self.constants;
        if q.aggregated {
            q.out_rows() * c.tic_tup + q.num_groups * c.tic_tup
        } else {
            q.out_rows() * c.tic_tup
        }
    }

    fn consume_lm(&self, q: &QueryParams) -> f64 {
        let c = &self.constants;
        if q.aggregated {
            // Group column arrives in runs of its stored run length.
            let runs = q.out_rows() / q.c1.run_len.max(1.0);
            runs * (c.tic_col + c.fc) + q.out_rows() * c.fc + q.num_groups * c.tic_tup
        } else {
            // Tuples must be merged and iterated.
            merge_cost(q.out_rows(), 2.0, c) + q.out_rows() * c.tic_tup
        }
    }

    /// Extra CPU when fetching values from a bit-vector column: the whole
    /// column must be decompressed (one column-iterator step per row).
    fn decompress_penalty(&self, col: &ColumnParams) -> f64 {
        col.rows * self.constants.tic_col
    }

    /// EM-parallel: SPC over both columns, then consume.
    pub fn em_parallel(&self, q: &QueryParams) -> CostBreakdown {
        let c = &self.constants;
        let mut cost = CostBreakdown::default();
        cost.add(spc(&[q.c1, q.c2], &[q.sf1, q.sf2], c));
        if q.c1_decompress_fetch {
            cost.add_cpu(self.decompress_penalty(&q.c1));
        }
        if q.c2_decompress_fetch {
            cost.add_cpu(self.decompress_penalty(&q.c2));
        }
        cost.add_cpu(self.consume_em(q));
        cost
    }

    /// EM-pipelined: DS2 on column 1, DS4 on column 2, then consume.
    pub fn em_pipelined(&self, q: &QueryParams) -> CostBreakdown {
        let c = &self.constants;
        let mut cost = CostBreakdown::default();
        cost.add(ds2(&q.c1, q.sf1, c));
        if q.c1_decompress_fetch {
            cost.add_cpu(self.decompress_penalty(&q.c1));
        }
        cost.add(ds4(&q.c2, q.n * q.sf1, q.sf2, c));
        cost.add_cpu(self.consume_em(q));
        cost
    }

    /// LM-parallel: two DS1s, AND, two (re-access) DS3s, merge/aggregate.
    pub fn lm_parallel(&self, q: &QueryParams) -> CostBreakdown {
        let c = &self.constants;
        let mut cost = CostBreakdown::default();
        cost.add(ds1(&q.c1, q.sf1, c));
        cost.add(ds1(&q.c2, q.sf2, c));
        cost.add_cpu(and_cost(
            &[
                AndInput {
                    positions: q.n * q.sf1,
                    run_len: q.pos_run_len1,
                    is_bitstring: q.bitstring1,
                },
                AndInput {
                    positions: q.n * q.sf2,
                    run_len: q.pos_run_len2,
                    is_bitstring: q.bitstring2,
                },
            ],
            c,
        ));
        // AND output: ranges only if both inputs were ranges.
        let out_runs = if q.bitstring1 || q.bitstring2 {
            1.0
        } else {
            q.pos_run_len1.min(q.pos_run_len2)
        };
        let out = q.out_rows();
        // Re-access both columns at the surviving positions (multi-column
        // optimization: I/O is zero).
        cost.add(ds3(&q.c1, out, out_runs, q.sf1 * q.sf2, true, c));
        if q.c1_decompress_fetch {
            cost.add_cpu(self.decompress_penalty(&q.c1));
        }
        cost.add(ds3(&q.c2, out, out_runs, q.sf1 * q.sf2, true, c));
        if q.c2_decompress_fetch {
            cost.add_cpu(self.decompress_penalty(&q.c2));
        }
        cost.add_cpu(self.consume_lm(q));
        cost
    }

    /// LM-pipelined: DS1 on column 1; DS3 on column 2 at only the
    /// surviving positions (first access — I/O is the `SF`-scaled read);
    /// predicate on the fetched subset; final re-access of column 1.
    ///
    /// Returns `None` when column 2 does not support DS3 (bit-vector).
    pub fn lm_pipelined(&self, q: &QueryParams) -> Option<CostBreakdown> {
        if !q.c2_supports_ds3 {
            return None;
        }
        let c = &self.constants;
        let mut cost = CostBreakdown::default();
        cost.add(ds1(&q.c1, q.sf1, c));
        // Fetch c2 values at positions passing predicate 1, then filter.
        cost.add(ds3(&q.c2, q.n * q.sf1, q.pos_run_len1, q.sf1, false, c));
        cost.add_cpu(q.n * q.sf1 * c.fc); // apply predicate 2 to the subset
                                          // Re-access c1 for its values at the final positions.
        let out = q.out_rows();
        let out_runs = q.pos_run_len1.min(q.pos_run_len2);
        cost.add(ds3(&q.c1, out, out_runs, q.sf1 * q.sf2, true, c));
        if q.c1_decompress_fetch {
            cost.add_cpu(self.decompress_penalty(&q.c1));
        }
        cost.add_cpu(self.consume_lm(q));
        Some(cost)
    }

    /// Price one plan; `None` when the plan is unsupported for the
    /// parameters.
    pub fn estimate(&self, kind: PlanKind, q: &QueryParams) -> Option<CostBreakdown> {
        match kind {
            PlanKind::EmPipelined => Some(self.em_pipelined(q)),
            PlanKind::EmParallel => Some(self.em_parallel(q)),
            PlanKind::LmPipelined => self.lm_pipelined(q),
            PlanKind::LmParallel => Some(self.lm_parallel(q)),
        }
    }

    /// CPU the work-stealing scheduler itself burns at `workers`
    /// granule-parallel threads: every worker performs about
    /// [`SCHED_CHUNKS_PER_WORKER`] chunk claims (own-span head claims
    /// and tail steals cost the same bookkeeping), each one mutex
    /// round-trip priced at `FC`. Zero for a serial run — a single-span
    /// plan never enters the scheduler loop.
    pub fn steal_overhead(&self, workers: usize) -> f64 {
        if workers <= 1 {
            0.0
        } else {
            workers as f64 * SCHED_CHUNKS_PER_WORKER * self.constants.fc
        }
    }

    /// Price one plan as executed by `workers` granule-parallel threads
    /// under the work-stealing scheduler (CPU divides, I/O does not, and
    /// the scheduler's claim/steal bookkeeping is added on top); `None`
    /// when the plan is unsupported for the parameters.
    pub fn estimate_parallel(
        &self,
        kind: PlanKind,
        q: &QueryParams,
        workers: usize,
    ) -> Option<CostBreakdown> {
        self.estimate(kind, q).map(|c| {
            let mut c = c.with_workers(workers);
            c.cpu_us += self.steal_overhead(workers);
            c
        })
    }

    /// The cheapest supported plan — the §6 optimizer decision.
    pub fn best_plan(&self, q: &QueryParams) -> (PlanKind, CostBreakdown) {
        self.best_plan_parallel(q, 1)
    }

    /// The cheapest supported plan at the given worker count. Parallelism
    /// shrinks only the CPU term, so the winner can differ from the
    /// serial choice: CPU-bound LM plans gain the most, I/O-dominated
    /// plans keep their floor.
    pub fn best_plan_parallel(&self, q: &QueryParams, workers: usize) -> (PlanKind, CostBreakdown) {
        PlanKind::ALL
            .iter()
            .filter_map(|&k| self.estimate_parallel(k, q, workers).map(|c| (k, c)))
            .min_by(|a, b| a.1.total_us().total_cmp(&b.1.total_us()))
            .expect("EM plans are always supported")
    }

    /// Price a hash join under the chosen inner-table representation.
    ///
    /// * **Build** (span- and column-parallel): read the right key
    ///   column fully, decode it, and hash every row into the
    ///   partitioned table. `Materialized` additionally decodes every
    ///   right output column and constructs the full right tuples up
    ///   front; the other representations ship the output columns
    ///   compressed (their blocks are still read at build time — all
    ///   three representations touch the same blocks, as the executor
    ///   does).
    /// * **Probe** (span-parallel): read the left key and output columns,
    ///   probe the table once per surviving left row, fetch left values
    ///   with a merge on the sorted positions, and fetch right values per
    ///   representation: an array index for `Materialized`, a positional
    ///   probe into the compressed mini-columns for `MultiColumn`, and
    ///   the Figure 13 positional-join penalty (sort + gather + scatter
    ///   over the *unsorted* right positions) for `SingleColumn`.
    pub fn hash_join(&self, q: &JoinParams, kind: JoinInnerKind) -> JoinCost {
        self.hash_join_with_reuse(q, kind, false)
    }

    /// [`Self::hash_join`] with the build-reuse discount the join-tree
    /// executor earns: when `build_reused` is set, the partitioned hash
    /// table on the right key already exists (built by an earlier edge of
    /// the same tree probing the same inner table), so the key-column
    /// scan, its cold I/O, and the per-row hash inserts all drop out of
    /// the build phase. The right output *representations* are still
    /// priced — an edge may project different columns than the edge that
    /// built the table — which makes the discount conservative when the
    /// projections coincide (the executor's second fetch is then served
    /// by the buffer pool).
    pub fn hash_join_with_reuse(
        &self,
        q: &JoinParams,
        kind: JoinInnerKind,
        build_reused: bool,
    ) -> JoinCost {
        let c = &self.constants;
        let out = q.out_rows();

        // ---- Build ------------------------------------------------------
        let mut build = CostBreakdown::default();
        if !build_reused {
            // Right key: a DS1-shaped full scan whose "emit" term (SF = 1)
            // is the hash insert per row. Code-keyed builds hash the
            // stored codes and skip the per-unit decode.
            build.add(if q.code_keyed {
                ds1_code(&q.right_key, 1.0, c)
            } else {
                ds1(&q.right_key, 1.0, c)
            });
        }
        // Right output blocks enter the pool at build for every
        // representation (compressed mini-columns or full decode).
        build.add((q.right_out_blocks * c.bic, q.right_out_io(c)));
        if kind == JoinInnerKind::Materialized {
            // Decode every output column and construct row-major tuples.
            build.add_cpu(q.right_rows() * q.right_out_cols * (c.tic_col + c.tic_tup));
        }

        // ---- Probe ------------------------------------------------------
        let mut probe = CostBreakdown::default();
        // Left key: a DS1 at the filter's selectivity, plus one hash
        // probe per surviving row.
        probe.add(if q.code_keyed {
            ds1_code(&q.left_key, q.sf, c)
        } else {
            ds1(&q.left_key, q.sf, c)
        });
        probe.add_cpu(q.left_rows() * q.sf * c.fc);
        // Left output values: merge on sorted positions (one column-
        // iterator step + function call per output value), blocks read in
        // full like the executor's span-local fetch.
        probe.add((
            q.left_out_blocks * c.bic + out * q.left_out_cols * (c.tic_col + c.fc),
            q.left_out_io(c),
        ));
        // Right output values per representation.
        let right_fetch = match kind {
            // Array index + tuple copy.
            JoinInnerKind::Materialized => out * q.right_out_cols * c.tic_tup,
            // Positional probe into compressed blocks: block binary
            // search (FC-scaled) + column-iterator step + tuple write.
            JoinInnerKind::MultiColumn => {
                out * q.right_out_cols * (q.right_block_search(c) + c.tic_col + c.tic_tup)
            }
            // The same positional probes, plus the extra positional join
            // on unsorted right positions: sort the matches, gather, and
            // scatter back into output order (§4.3, Figure 13).
            JoinInnerKind::SingleColumn => {
                out * q.right_out_cols * (q.right_block_search(c) + c.tic_col + c.tic_tup)
                    + out * (2.0 * c.fc) * (out.max(2.0)).log2()
                    + out * q.right_out_cols * c.fc
            }
        };
        probe.add_cpu(right_fetch);
        // Stitch the final tuples.
        probe.add_cpu(out * c.tic_tup);

        JoinCost { build, probe }
    }

    /// Price a join as executed with `build_workers` build threads and
    /// `probe_workers` probe threads: build CPU divides by the build
    /// count, probe CPU by the probe count, I/O is shared by all. On top
    /// of the division the parallel machinery itself is priced:
    ///
    /// * **Radix partitioning** (`build_workers > 1`) — the partitioned
    ///   build hashes and scatters every right row once more than the
    ///   serial insertion loop does (`FC` each, parallel across build
    ///   workers), and every surviving probe pays one extra partition
    ///   hash (`FC`, parallel across probe workers).
    /// * **Scheduler bookkeeping** — each parallel phase pays the
    ///   work-stealing claim overhead ([`Self::steal_overhead`]).
    pub fn hash_join_parallel(
        &self,
        q: &JoinParams,
        kind: JoinInnerKind,
        build_workers: usize,
        probe_workers: usize,
    ) -> CostBreakdown {
        self.hash_join_parallel_with_reuse(q, kind, build_workers, probe_workers, false)
    }

    /// [`Self::hash_join_parallel`] with the build-reuse discount
    /// ([`Self::hash_join_with_reuse`]). A reused build additionally
    /// skips the radix scatter pass and the build phase's scheduler
    /// bookkeeping — no build pipeline runs at all — while the probe
    /// still pays its per-row partition hash when the *cached* table was
    /// built partitioned (`build_workers > 1` describes how the table
    /// was built, whether by this edge or the one it reuses).
    pub fn hash_join_parallel_with_reuse(
        &self,
        q: &JoinParams,
        kind: JoinInnerKind,
        build_workers: usize,
        probe_workers: usize,
        build_reused: bool,
    ) -> CostBreakdown {
        let c = &self.constants;
        let mut cost = self
            .hash_join_with_reuse(q, kind, build_reused)
            .with_workers(build_workers, probe_workers);
        if build_workers > 1 {
            if !build_reused {
                cost.cpu_us += q.right_rows() * c.fc / build_workers as f64;
            }
            cost.cpu_us += q.left_rows() * q.sf * c.fc / probe_workers.max(1) as f64;
        }
        if !build_reused {
            cost.cpu_us += self.steal_overhead(build_workers);
        }
        cost.cpu_us += self.steal_overhead(probe_workers);
        cost
    }

    /// The cheapest inner-table representation at the given worker
    /// counts.
    pub fn best_join_plan(
        &self,
        q: &JoinParams,
        build_workers: usize,
        probe_workers: usize,
    ) -> (JoinInnerKind, CostBreakdown) {
        JoinInnerKind::ALL
            .iter()
            .map(|&k| {
                (
                    k,
                    self.hash_join_parallel(q, k, build_workers, probe_workers),
                )
            })
            .min_by(|a, b| a.1.total_us().total_cmp(&b.1.total_us()))
            .expect("three plans are always estimable")
    }

    /// Price a left-deep join tree: the edges execute in slice order,
    /// each probing the running intermediate with the hash table built
    /// (or reused) on its inner table.
    ///
    /// The composition is where multi-way pricing differs from summing
    /// independent joins: each edge's probe-side row count is **rewritten
    /// to the previous edge's estimated output cardinality** (`left_rows
    /// × sf × match_rate × fanout`, chained), so a plan that shrinks the
    /// intermediate early makes every later probe cheaper — the quantity
    /// edge ordering optimizes. Edges flagged `build_reused` take the
    /// [`Self::hash_join_parallel_with_reuse`] discount.
    pub fn join_tree(&self, edges: &[JoinTreeEdgeParams]) -> JoinTreeCost {
        self.join_tree_bushy(edges, &[])
    }

    /// [`Self::join_tree`] with **bushy** semi-join reductions applied: a
    /// dimension subtree built ahead of its parent thins the parent's
    /// hash table, so the parent edge's match rate drops by the child's
    /// `keep_rate` — the intermediate shrinks one edge *earlier* than the
    /// left-deep chain would shrink it. (The caller re-rates the bushy
    /// child edge itself at match rate 1.0, so the final cardinality is
    /// unchanged — bushiness moves where rows die, never how many.)
    /// Applying a reduction is not free: the parent's build additionally
    /// probes the child's table once per parent row (`FC` each, across
    /// the build workers).
    pub fn join_tree_bushy(
        &self,
        edges: &[JoinTreeEdgeParams],
        reductions: &[BushyReduction],
    ) -> JoinTreeCost {
        let c = &self.constants;
        let mut per_edge = Vec::with_capacity(edges.len());
        let mut cards = Vec::with_capacity(edges.len());
        let mut total = CostBreakdown::default();
        let mut rows = edges.first().map_or(0.0, |e| e.params.left_rows());
        for (slot, e) in edges.iter().enumerate() {
            let mut p = e.params;
            p.left_key.rows = rows;
            for r in reductions.iter().filter(|r| r.parent_slot == slot) {
                p.match_rate *= r.keep_rate.clamp(0.0, 1.0);
            }
            let mut cost = self.hash_join_parallel_with_reuse(
                &p,
                e.kind,
                e.build_workers,
                e.probe_workers,
                e.build_reused,
            );
            for r in reductions.iter().filter(|r| r.parent_slot == slot) {
                cost.cpu_us += r.scan_rows * c.fc / e.build_workers.max(1) as f64;
            }
            rows = p.out_rows();
            cards.push(rows);
            total.cpu_us += cost.cpu_us;
            total.io_us += cost.io_us;
            per_edge.push((e.kind, cost));
        }
        JoinTreeCost {
            edges: per_edge,
            cards,
            total,
        }
    }
}

/// One bushy semi-join reduction for [`CostModel::join_tree_bushy`]: the
/// child subtree's hash table is built first and thins the parent's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BushyReduction {
    /// Execution slot (index into the `edges` slice) of the parent edge
    /// whose build the reduction thins.
    pub parent_slot: usize,
    /// Fraction of the parent table's rows that survive the child's
    /// semi-join — the child edge's own match rate against the parent.
    pub keep_rate: f64,
    /// Rows the reduction inspects at parent-build time (the parent
    /// table's row count): each pays one child-table probe.
    pub scan_rows: f64,
}

/// One edge of a join-tree pricing request, in execution order.
///
/// `params.left_key.rows` is only honored for the first edge (the base
/// table's surviving row count enters there); later edges have it
/// overwritten by the chained intermediate cardinality — callers
/// describe each edge *locally* (key column shape, filter selectivity,
/// match rate, fan-out, output widths) and [`CostModel::join_tree`]
/// does the composing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinTreeEdgeParams {
    /// The edge's single-join parameters (probe rows chained by the
    /// composition for all but the first edge).
    pub params: JoinParams,
    /// Inner-table representation this edge runs.
    pub kind: JoinInnerKind,
    /// Workers the partitioned build would use (how the table is
    /// partitioned — also for a reused build, which was built by the
    /// edge it reuses).
    pub build_workers: usize,
    /// Workers the probe pipeline uses (skew-guarded on the base table).
    pub probe_workers: usize,
    /// Whether this edge reuses a hash table an earlier edge built on
    /// the same (inner table, key column).
    pub build_reused: bool,
}

/// The priced join tree: per-edge estimates (execution order), the
/// chained intermediate-cardinality estimates, and the plan total the
/// planner minimizes over edge orders × inner strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinTreeCost {
    /// Per-edge representation and estimate, in execution order.
    pub edges: Vec<(JoinInnerKind, CostBreakdown)>,
    /// Estimated output cardinality *after* each edge (same order); the
    /// last entry is the tree's estimated result rows.
    pub cards: Vec<f64>,
    /// Sum of the per-edge estimates.
    pub total: CostBreakdown,
}

impl JoinTreeCost {
    /// Total microseconds of the whole tree.
    pub fn total_us(&self) -> f64 {
        self.total.total_us()
    }

    /// Estimated result rows of the whole tree.
    pub fn out_rows(&self) -> f64 {
        self.cards.last().copied().unwrap_or(0.0)
    }
}

/// Which inner-table representation a hash join uses (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinInnerKind {
    /// Right tuples constructed before the join (EM).
    Materialized,
    /// Right columns shipped compressed; tuples built per match.
    MultiColumn,
    /// Only the key column enters the join; values fetched by position
    /// afterwards (pure LM).
    SingleColumn,
}

impl JoinInnerKind {
    /// All three representations, in the paper's Figure 13 order.
    pub const ALL: [JoinInnerKind; 3] = [
        JoinInnerKind::Materialized,
        JoinInnerKind::MultiColumn,
        JoinInnerKind::SingleColumn,
    ];

    /// Short name used in harness output.
    pub fn name(self) -> &'static str {
        match self {
            JoinInnerKind::Materialized => "Right Table Materialized",
            JoinInnerKind::MultiColumn => "Right Table Multi-Column",
            JoinInnerKind::SingleColumn => "Right Table Single Column",
        }
    }
}

/// Parameters of the §4.3 equi-join: `left ⋈ right` on a key pair with
/// an optional filter on the left side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinParams {
    /// Left (probe-side) key column.
    pub left_key: ColumnParams,
    /// Right (build-side) key column.
    pub right_key: ColumnParams,
    /// Selectivity of the optional left filter (1.0 = no filter).
    pub sf: f64,
    /// Fraction of surviving left rows that find a match (1.0 for a
    /// foreign-key join).
    pub match_rate: f64,
    /// Average matches per matching probe — the duplication factor of
    /// the right key (`right_rows / distinct right keys`; 1.0 for a
    /// primary-key build side). Output rows multiply by this, which is
    /// what makes intermediate cardinalities compose across a join tree.
    pub fanout: f64,
    /// Number of left output columns.
    pub left_out_cols: f64,
    /// Total blocks across the left output columns.
    pub left_out_blocks: f64,
    /// Number of right output columns.
    pub right_out_cols: f64,
    /// Total blocks across the right output columns.
    pub right_out_blocks: f64,
    /// Resident fraction of the left output blocks.
    pub left_out_resident: f64,
    /// Resident fraction of the right output blocks.
    pub right_out_resident: f64,
    /// Whether both key columns carry one shared sorted dictionary over
    /// the same domain, so the join hashes and probes u32 codes and
    /// never decodes a key (compressed execution). Key scans are then
    /// priced with [`ds1_code`]; I/O is unchanged.
    pub code_keyed: bool,
}

impl JoinParams {
    /// A cold foreign-key join with sensible defaults.
    pub fn fk_join(left_key: ColumnParams, right_key: ColumnParams, sf: f64) -> JoinParams {
        JoinParams {
            left_key,
            right_key,
            sf,
            match_rate: 1.0,
            fanout: 1.0,
            left_out_cols: 1.0,
            left_out_blocks: left_key.blocks,
            right_out_cols: 1.0,
            right_out_blocks: right_key.blocks,
            left_out_resident: 0.0,
            right_out_resident: 0.0,
            code_keyed: false,
        }
    }

    /// Left row count.
    pub fn left_rows(&self) -> f64 {
        self.left_key.rows
    }

    /// Right row count.
    pub fn right_rows(&self) -> f64 {
        self.right_key.rows
    }

    /// Output rows: surviving left rows that match, times the right
    /// key's duplication fan-out.
    pub fn out_rows(&self) -> f64 {
        self.left_rows() * self.sf * self.match_rate * self.fanout
    }

    /// Cold-I/O term for the left output columns.
    pub fn left_out_io(&self, c: &Constants) -> f64 {
        (self.left_out_blocks / c.pf * c.seek + self.left_out_blocks * c.read)
            * (1.0 - self.left_out_resident)
    }

    /// Cold-I/O term for the right output columns.
    pub fn right_out_io(&self, c: &Constants) -> f64 {
        (self.right_out_blocks / c.pf * c.seek + self.right_out_blocks * c.read)
            * (1.0 - self.right_out_resident)
    }

    /// CPU of locating one right position's block: a binary search over
    /// the per-column block index, FC per comparison.
    fn right_block_search(&self, c: &Constants) -> f64 {
        let per_col_blocks = (self.right_out_blocks / self.right_out_cols.max(1.0)).max(2.0);
        c.fc * per_col_blocks.log2()
    }
}

/// CPU/IO split of a join estimate, separating the build from the probe
/// so parallelism can be priced honestly: the two phases run on
/// different tables (right vs left), so each divides by its *own*
/// effective worker count, and the shared I/O divides by neither.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JoinCost {
    /// The build phase (partitioned hash table + right representations),
    /// span-parallel over the right table.
    pub build: CostBreakdown,
    /// The probe phase, span-parallel over the left table.
    pub probe: CostBreakdown,
}

impl JoinCost {
    /// Collapse to one estimate: build CPU divides by the worker count
    /// the partitioned build will actually use (the skew guard applied
    /// to the *right* table), probe CPU by the probe's (the guard on the
    /// *left* table), and the shared cold-I/O terms are unchanged (the
    /// workers share one disk arm and one buffer pool). Raw division
    /// only — [`CostModel::hash_join_parallel`] layers the partitioning
    /// and scheduler overheads on top.
    pub fn with_workers(self, build_workers: usize, probe_workers: usize) -> CostBreakdown {
        CostBreakdown {
            cpu_us: self.build.cpu_us / build_workers.max(1) as f64
                + self.probe.cpu_us / probe_workers.max(1) as f64,
            io_us: self.build.io_us + self.probe.io_us,
        }
    }

    /// Serial total microseconds.
    pub fn total_us(&self) -> f64 {
        self.build.total_us() + self.probe.total_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(Constants::paper())
    }

    /// Paper-scale RLE setup (§3.7): shipdate 1 block / 3,800 "tuples"
    /// (runs), linenum 5 blocks / 26,726 runs, 60 M rows.
    fn rle_params(sf1: f64) -> QueryParams {
        let n = 60_000_000.0;
        let c1 = ColumnParams {
            blocks: 1.0,
            rows: n,
            run_len: n / 3800.0,
            resident: 0.0,
            code_width: 8.0,
            shared_dict: false,
        };
        let c2 = ColumnParams {
            blocks: 5.0,
            rows: n,
            run_len: n / 26_726.0,
            resident: 0.0,
            code_width: 8.0,
            shared_dict: false,
        };
        let mut q = QueryParams::selection(n, c1, c2, sf1, 0.96);
        // Positions from a range predicate over the semi-sorted shipdate
        // coalesce into a few long runs (one per RETURNFLAG group).
        q.pos_run_len1 = (n * sf1 / 3.0).max(1.0);
        q.pos_run_len2 = (n * 0.96 / 26_726.0).max(1.0);
        q
    }

    fn uncompressed_params(sf1: f64) -> QueryParams {
        let n = 60_000_000.0;
        let c1 = ColumnParams {
            blocks: 1.0,
            rows: n,
            run_len: n / 3800.0,
            resident: 0.0,
            code_width: 8.0,
            shared_dict: false,
        };
        let c2 = ColumnParams {
            blocks: 916.0,
            rows: n,
            run_len: 1.0,
            resident: 0.0,
            code_width: 8.0,
            shared_dict: false,
        };
        let mut q = QueryParams::selection(n, c1, c2, sf1, 0.96);
        q.pos_run_len1 = (n * sf1 / 3.0).max(1.0);
        q.pos_run_len2 = 1.0;
        q
    }

    #[test]
    fn costs_increase_with_selectivity() {
        let m = model();
        for kind in PlanKind::ALL {
            let lo = m.estimate(kind, &rle_params(0.1));
            let hi = m.estimate(kind, &rle_params(0.9));
            if let (Some(lo), Some(hi)) = (lo, hi) {
                assert!(
                    hi.total_us() > lo.total_us(),
                    "{kind:?} should cost more at higher selectivity"
                );
            }
        }
    }

    #[test]
    fn rle_lm_beats_em_at_high_selectivity() {
        // Figure 11(b): both LM strategies beat both EM strategies for
        // RLE-compressed data once selectivity is non-trivial.
        let m = model();
        let q = rle_params(0.5);
        let lm = m.lm_parallel(&q).total_us();
        let lmp = m.lm_pipelined(&q).unwrap().total_us();
        let emp = m.em_parallel(&q).total_us();
        let emd = m.em_pipelined(&q).total_us();
        assert!(lm < emp && lm < emd, "LM-parallel {lm} vs EM {emp}/{emd}");
        assert!(lmp < emp && lmp < emd);
    }

    #[test]
    fn uncompressed_lm_pipelined_wins_low_selectivity_loses_high() {
        // Figure 11(a): LM-pipelined is best at low selectivity (block
        // skipping on the big uncompressed column) and worst-or-near at
        // high selectivity (per-position jumps).
        let m = model();
        let low = uncompressed_params(0.01);
        let high = uncompressed_params(0.9);
        let lmp_low = m.lm_pipelined(&low).unwrap().total_us();
        let emp_low = m.em_parallel(&low).total_us();
        assert!(
            lmp_low < emp_low,
            "low sel: {lmp_low} should beat {emp_low}"
        );
        let lmp_high = m.lm_pipelined(&high).unwrap().total_us();
        let emp_high = m.em_parallel(&high).total_us();
        assert!(
            emp_high < lmp_high,
            "high sel: EM-parallel {emp_high} should beat LM-pipelined {lmp_high}"
        );
    }

    #[test]
    fn aggregation_flattens_lm_but_not_em() {
        // Figure 12 vs Figure 11: adding the aggregator leaves EM costs
        // nearly unchanged but cuts LM costs (no tuples constructed).
        let m = model();
        let sel = rle_params(0.8);
        let mut agg = sel;
        agg.aggregated = true;
        agg.num_groups = 2526.0;
        let lm_sel = m.lm_parallel(&sel).total_us();
        let lm_agg = m.lm_parallel(&agg).total_us();
        assert!(
            lm_agg < 0.5 * lm_sel,
            "agg should slash LM cost: {lm_agg} vs {lm_sel}"
        );
        let em_sel = m.em_parallel(&sel).total_us();
        let em_agg = m.em_parallel(&agg).total_us();
        assert!((em_agg - em_sel).abs() / em_sel < 0.25, "EM barely changes");
    }

    #[test]
    fn bitvec_disables_lm_pipelined() {
        let m = model();
        let mut q = rle_params(0.5);
        q.c2_supports_ds3 = false;
        assert!(m.lm_pipelined(&q).is_none());
        assert!(m.estimate(PlanKind::LmPipelined, &q).is_none());
        // best_plan still returns something.
        let (_, cost) = m.best_plan(&q);
        assert!(cost.total_us() > 0.0);
    }

    #[test]
    fn best_plan_picks_minimum() {
        let m = model();
        let q = rle_params(0.5);
        let (kind, cost) = m.best_plan(&q);
        for k in PlanKind::ALL {
            if let Some(c) = m.estimate(k, &q) {
                assert!(cost.total_us() <= c.total_us() + 1e-9, "{kind:?} vs {k:?}");
            }
        }
    }

    #[test]
    fn decompress_fetch_penalizes_lm_fetch_paths() {
        let m = model();
        let q = rle_params(0.5);
        let mut qb = q;
        qb.c2_decompress_fetch = true;
        assert!(m.lm_parallel(&qb).total_us() > m.lm_parallel(&q).total_us());
    }

    #[test]
    fn workers_divide_cpu_not_io() {
        let m = model();
        let q = rle_params(0.5);
        for kind in PlanKind::ALL {
            let (serial, four) = match (m.estimate(kind, &q), m.estimate_parallel(kind, &q, 4)) {
                (Some(s), Some(p)) => (s, p),
                _ => continue,
            };
            // CPU divides, plus the scheduler's claim/steal bookkeeping.
            let expect = serial.cpu_us / 4.0 + m.steal_overhead(4);
            assert!((four.cpu_us - expect).abs() < 1e-9, "{kind:?}");
            assert!(
                (four.io_us - serial.io_us).abs() < 1e-9,
                "{kind:?}: io is shared"
            );
        }
        // Degenerate worker counts clamp to serial, with no scheduler
        // overhead (a single-span plan never enters the steal loop).
        assert_eq!(m.steal_overhead(0), 0.0);
        assert_eq!(m.steal_overhead(1), 0.0);
        let s = m.em_parallel(&q);
        assert_eq!(s.with_workers(0).total_us(), s.total_us());
        assert_eq!(s.with_workers(1).total_us(), s.total_us());
        assert_eq!(
            m.estimate_parallel(PlanKind::EmParallel, &q, 1)
                .unwrap()
                .total_us(),
            s.total_us()
        );
    }

    #[test]
    fn steal_overhead_is_small_but_priced() {
        let m = model();
        // workers × CHUNKS_PER_WORKER × FC, microseconds.
        let c = m.constants();
        assert!((m.steal_overhead(8) - 8.0 * SCHED_CHUNKS_PER_WORKER * c.fc).abs() < 1e-12);
        // Monotone in workers — more claimants, more bookkeeping.
        assert!(m.steal_overhead(8) > m.steal_overhead(2));
    }

    #[test]
    fn best_plan_parallel_never_worse_than_serial_estimate() {
        let m = model();
        for sf in [0.05, 0.5, 0.95] {
            let q = rle_params(sf);
            let (_, serial) = m.best_plan(&q);
            let (_, four) = m.best_plan_parallel(&q, 4);
            assert!(
                four.total_us() <= serial.total_us() + 1e-9,
                "sf={sf}: more workers cannot make the best plan dearer"
            );
        }
    }

    #[test]
    fn plan_names() {
        assert_eq!(PlanKind::EmParallel.name(), "EM-parallel");
        assert_eq!(PlanKind::LmPipelined.name(), "LM-pipelined");
    }

    /// Figure 13-scale FK join: 1.5 M orders probing 150 K customers.
    fn join_params(sf: f64) -> JoinParams {
        let left_key = ColumnParams::cold(23.0, 1_500_000.0, 1.0);
        let right_key = ColumnParams::cold(3.0, 150_000.0, 1.0);
        JoinParams::fk_join(left_key, right_key, sf)
    }

    #[test]
    fn join_cpu_orders_single_column_worst() {
        // Figure 13: materialized ≈ multi-column, single-column pays the
        // extra positional join and lands clearly slower.
        let m = model();
        let q = join_params(0.5);
        let mat = m.hash_join(&q, JoinInnerKind::Materialized);
        let mc = m.hash_join(&q, JoinInnerKind::MultiColumn);
        let sc = m.hash_join(&q, JoinInnerKind::SingleColumn);
        assert!(
            mc.probe.cpu_us < sc.probe.cpu_us,
            "single-column pays the positional join: {} vs {}",
            mc.probe.cpu_us,
            sc.probe.cpu_us
        );
        // All three read the same blocks.
        assert!((mat.build.io_us - mc.build.io_us).abs() < 1e-9);
        assert!((mc.build.io_us - sc.build.io_us).abs() < 1e-9);
        assert!((mat.probe.io_us - sc.probe.io_us).abs() < 1e-9);
        // Materialized fronts the tuple construction at build time.
        assert!(mat.build.cpu_us > mc.build.cpu_us);
    }

    #[test]
    fn join_cost_grows_with_selectivity() {
        let m = model();
        for kind in JoinInnerKind::ALL {
            let lo = m.hash_join(&join_params(0.1), kind).total_us();
            let hi = m.hash_join(&join_params(0.9), kind).total_us();
            assert!(hi > lo, "{kind:?}");
        }
    }

    #[test]
    fn join_workers_divide_each_phase_cpu_only() {
        let m = model();
        let q = join_params(0.5);
        for kind in JoinInnerKind::ALL {
            let cost = m.hash_join(&q, kind);
            let serial = cost.with_workers(1, 1);
            // Probe workers alone: probe CPU divides, build CPU and all
            // I/O stay put.
            let probe4 = cost.with_workers(1, 4);
            let expect_cpu = cost.build.cpu_us + cost.probe.cpu_us / 4.0;
            assert!((probe4.cpu_us - expect_cpu).abs() < 1e-9, "{kind:?}");
            assert!((probe4.io_us - serial.io_us).abs() < 1e-9, "{kind:?}");
            // Build workers divide the build phase independently.
            let both4 = cost.with_workers(4, 4);
            let expect_cpu = cost.build.cpu_us / 4.0 + cost.probe.cpu_us / 4.0;
            assert!((both4.cpu_us - expect_cpu).abs() < 1e-9, "{kind:?}");
            assert!((both4.io_us - serial.io_us).abs() < 1e-9, "{kind:?}");
            assert!(both4.cpu_us < probe4.cpu_us && probe4.cpu_us < serial.cpu_us);
            // Degenerate worker counts clamp to serial.
            assert_eq!(cost.with_workers(0, 0).total_us(), serial.total_us());
            // Serial collapse equals the two-phase total.
            assert!((serial.total_us() - cost.total_us()).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_join_prices_partitioning_and_steal_overhead() {
        let m = model();
        let q = join_params(0.5);
        let c = *m.constants();
        for kind in JoinInnerKind::ALL {
            let cost = m.hash_join(&q, kind);
            // Serial worker counts collapse to the raw estimate: no
            // partitioning, no scheduler.
            let serial = m.hash_join_parallel(&q, kind, 1, 1);
            assert!(
                (serial.total_us() - cost.total_us()).abs() < 1e-9,
                "{kind:?}"
            );
            // Parallel build pays the radix scatter (right rows) and the
            // per-probe partition hash (surviving left rows), both
            // divided by their phase's workers, plus two scheduler
            // overheads.
            let par = m.hash_join_parallel(&q, kind, 4, 8);
            let expect = cost.build.cpu_us / 4.0
                + cost.probe.cpu_us / 8.0
                + q.right_rows() * c.fc / 4.0
                + q.left_rows() * q.sf * c.fc / 8.0
                + m.steal_overhead(4)
                + m.steal_overhead(8);
            assert!((par.cpu_us - expect).abs() < 1e-6, "{kind:?}");
            // Probe-only parallelism keeps the build unpartitioned: no
            // radix terms, one scheduler.
            let probe_only = m.hash_join_parallel(&q, kind, 1, 8);
            let expect = cost.build.cpu_us + cost.probe.cpu_us / 8.0 + m.steal_overhead(8);
            assert!((probe_only.cpu_us - expect).abs() < 1e-6, "{kind:?}");
        }
    }

    #[test]
    fn join_parallelism_cannot_flip_to_a_dearer_plan() {
        let m = model();
        for sf in [0.1, 0.5, 1.0] {
            let q = join_params(sf);
            let (_, serial) = m.best_join_plan(&q, 1, 1);
            let (_, eight) = m.best_join_plan(&q, 8, 8);
            assert!(eight.total_us() <= serial.total_us() + 1e-9, "sf={sf}");
        }
    }

    #[test]
    fn build_reuse_discounts_key_scan_but_not_representations() {
        let m = model();
        let q = join_params(0.5);
        for kind in JoinInnerKind::ALL {
            let fresh = m.hash_join(&q, kind);
            let reused = m.hash_join_with_reuse(&q, kind, true);
            // The probe is untouched; the build drops the key scan + hash
            // inserts (CPU) and the key column's cold read (I/O).
            assert_eq!(reused.probe, fresh.probe, "{kind:?}");
            assert!(reused.build.cpu_us < fresh.build.cpu_us, "{kind:?}");
            assert!(reused.build.io_us < fresh.build.io_us, "{kind:?}");
            // Representations are still priced: Materialized keeps its
            // up-front tuple construction even on a reused table.
            if kind == JoinInnerKind::Materialized {
                let mc = m.hash_join_with_reuse(&q, JoinInnerKind::MultiColumn, true);
                assert!(reused.build.cpu_us > mc.build.cpu_us);
            }
        }
    }

    #[test]
    fn code_keyed_join_drops_key_decode_from_both_scans() {
        let m = model();
        let c = *m.constants();
        let mut q = join_params(0.5);
        q.left_key.code_width = 2.0;
        q.left_key.shared_dict = true;
        q.right_key.code_width = 2.0;
        q.right_key.shared_dict = true;
        let mut qc = q;
        qc.code_keyed = true;
        // Per key scan: the per-unit decode (FC) disappears and the
        // iterator step narrows to W/8 of TICCOL; the emit term and all
        // I/O are untouched. SF cancels out of the difference.
        let save = |col: &ColumnParams| {
            col.rows * ((c.tic_col + c.fc) - c.tic_col * col.code_cpu_factor())
                / col.run_len.max(1.0)
        };
        for kind in JoinInnerKind::ALL {
            let plain = m.hash_join(&q, kind);
            let coded = m.hash_join(&qc, kind);
            let expect_build = plain.build.cpu_us - save(&qc.right_key);
            let expect_probe = plain.probe.cpu_us - save(&qc.left_key);
            assert!((coded.build.cpu_us - expect_build).abs() < 1e-6, "{kind:?}");
            assert!((coded.probe.cpu_us - expect_probe).abs() < 1e-6, "{kind:?}");
            assert_eq!(coded.build.io_us, plain.build.io_us, "{kind:?}");
            assert_eq!(coded.probe.io_us, plain.probe.io_us, "{kind:?}");
            assert!(coded.total_us() < plain.total_us(), "{kind:?}");
        }
        // A reused build skips its key scan entirely — nothing left for
        // the code path to discount on that side.
        for kind in JoinInnerKind::ALL {
            let plain = m.hash_join_with_reuse(&q, kind, true);
            let coded = m.hash_join_with_reuse(&qc, kind, true);
            assert_eq!(coded.build, plain.build, "{kind:?}");
        }
    }

    #[test]
    fn parallel_reuse_skips_radix_and_build_scheduler() {
        let m = model();
        let q = join_params(0.5);
        let c = *m.constants();
        for kind in JoinInnerKind::ALL {
            let cost = m.hash_join_with_reuse(&q, kind, true);
            let par = m.hash_join_parallel_with_reuse(&q, kind, 4, 8, true);
            // No radix scatter, no build-side steal overhead; the probe
            // still pays its per-row partition hash (the cached table is
            // partitioned) and its own scheduler bookkeeping.
            let expect = cost.build.cpu_us / 4.0
                + cost.probe.cpu_us / 8.0
                + q.left_rows() * q.sf * c.fc / 8.0
                + m.steal_overhead(8);
            assert!((par.cpu_us - expect).abs() < 1e-6, "{kind:?}");
            // The non-reused path is untouched by the refactor.
            let fresh = m.hash_join_parallel_with_reuse(&q, kind, 4, 8, false);
            assert_eq!(fresh, m.hash_join_parallel(&q, kind, 4, 8), "{kind:?}");
        }
    }

    #[test]
    fn fanout_multiplies_output_cardinality() {
        let mut q = join_params(0.5);
        let base = q.out_rows();
        q.fanout = 3.0;
        assert!((q.out_rows() - 3.0 * base).abs() < 1e-9);
    }

    #[test]
    fn join_tree_chains_intermediate_cardinalities() {
        let m = model();
        // Edge 1 filters to half; edge 2's probe must be priced at the
        // intermediate cardinality, not its own left_rows.
        let e1 = join_params(0.5);
        let mut e2 = join_params(1.0);
        e2.sf = 1.0;
        let tree = m.join_tree(&[
            JoinTreeEdgeParams {
                params: e1,
                kind: JoinInnerKind::MultiColumn,
                build_workers: 1,
                probe_workers: 1,
                build_reused: false,
            },
            JoinTreeEdgeParams {
                params: e2,
                kind: JoinInnerKind::MultiColumn,
                build_workers: 1,
                probe_workers: 1,
                build_reused: false,
            },
        ]);
        assert_eq!(tree.edges.len(), 2);
        assert_eq!(tree.cards.len(), 2);
        // Edge 1: 1.5 M × 0.5 = 750 K; edge 2 probes 750 K.
        assert!((tree.cards[0] - 750_000.0).abs() < 1e-6);
        assert!((tree.out_rows() - 750_000.0).abs() < 1e-6);
        let mut chained = e2;
        chained.left_key.rows = 750_000.0;
        let edge2_alone = m.hash_join(&chained, JoinInnerKind::MultiColumn);
        assert!(
            (tree.edges[1].1.total_us() - edge2_alone.total_us()).abs() < 1e-6,
            "edge 2 priced at the chained cardinality"
        );
        // Totals sum.
        let sum: f64 = tree.edges.iter().map(|(_, c)| c.total_us()).sum();
        assert!((tree.total_us() - sum).abs() < 1e-6);
        // A selective edge first makes the whole tree cheaper than the
        // reverse order — the quantity edge ordering optimizes.
        let rev = m.join_tree(&[
            JoinTreeEdgeParams {
                params: e2,
                kind: JoinInnerKind::MultiColumn,
                build_workers: 1,
                probe_workers: 1,
                build_reused: false,
            },
            JoinTreeEdgeParams {
                params: e1,
                kind: JoinInnerKind::MultiColumn,
                build_workers: 1,
                probe_workers: 1,
                build_reused: false,
            },
        ]);
        // Note: the filter's sf travels with its edge here, so both
        // orders produce the same final cardinality...
        assert!((rev.out_rows() - tree.out_rows()).abs() < 1e-6);
        // ...but the selective-first order pays less along the way.
        assert!(tree.total_us() < rev.total_us());
    }

    #[test]
    fn join_tree_reuse_is_cheaper_than_rebuild() {
        let m = model();
        let e = JoinTreeEdgeParams {
            params: join_params(0.5),
            kind: JoinInnerKind::MultiColumn,
            build_workers: 1,
            probe_workers: 1,
            build_reused: false,
        };
        let rebuilt = m.join_tree(&[e, e]);
        let mut reused_edge = e;
        reused_edge.build_reused = true;
        let reused = m.join_tree(&[e, reused_edge]);
        assert!(reused.total_us() < rebuilt.total_us());
        assert!((reused.out_rows() - rebuilt.out_rows()).abs() < 1e-9);
    }

    #[test]
    fn empty_join_tree_prices_to_zero() {
        let m = model();
        let tree = m.join_tree(&[]);
        assert_eq!(tree.total_us(), 0.0);
        assert_eq!(tree.out_rows(), 0.0);
        assert!(tree.edges.is_empty());
    }

    #[test]
    fn join_kind_names_match_figure13() {
        assert_eq!(
            JoinInnerKind::Materialized.name(),
            "Right Table Materialized"
        );
        assert_eq!(
            JoinInnerKind::MultiColumn.name(),
            "Right Table Multi-Column"
        );
        assert_eq!(
            JoinInnerKind::SingleColumn.name(),
            "Right Table Single Column"
        );
    }
}
