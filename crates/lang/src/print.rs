//! Pretty-printing: engine specs → canonical query text.
//!
//! The printed form is the dialect's canonical spelling — uppercase
//! keywords, bare column names for scans, `table.column` everywhere in
//! join queries — chosen so that `compile(print(spec)) == spec` for any
//! spec the dialect can express (proved by property in
//! `tests/roundtrip.rs`). Constructor-built predicates print exactly;
//! a hand-built `Predicate` whose unused `operand2` differs from
//! `operand` re-parses with the two equal (the constructors' invariant).

use matstrat_common::{CompareOp, Error, Predicate, Result};
use matstrat_core::{JoinTreeSpec, QuerySpec, Statement};
use matstrat_storage::{ProjectionInfo, Store};

/// Render any statement shape.
pub fn print_statement(store: &Store, stmt: &Statement) -> Result<String> {
    match stmt {
        Statement::Select(q) => print_query(store, q),
        Statement::JoinTree(t) => print_join_tree(store, t),
        Statement::Insert { table, rows } => {
            let proj = store.projection(*table)?;
            if rows.is_empty() {
                return Err(Error::invalid("cannot print an INSERT with no rows"));
            }
            let tuples: Vec<String> = rows
                .iter()
                .map(|r| {
                    let vals: Vec<String> = r.iter().map(|v| v.to_string()).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            Ok(format!(
                "INSERT INTO {} VALUES {}",
                proj.name,
                tuples.join(", ")
            ))
        }
        Statement::Delete { table, filters } => {
            let proj = store.projection(*table)?;
            let mut text = format!("DELETE FROM {}", proj.name);
            for (i, (col, pred)) in filters.iter().enumerate() {
                let kw = if i == 0 { "WHERE" } else { "AND" };
                text.push_str(&format!(
                    " {kw} {}",
                    pred_text(col_name(&proj, *col)?, pred)?
                ));
            }
            Ok(text)
        }
    }
}

fn pred_text(col: &str, p: &Predicate) -> Result<String> {
    let op = match p.op {
        CompareOp::Lt => "<",
        CompareOp::Le => "<=",
        CompareOp::Gt => ">",
        CompareOp::Ge => ">=",
        CompareOp::Eq => "=",
        CompareOp::Ne => "!=",
        CompareOp::Between => return Ok(format!("{col} BETWEEN {} AND {}", p.operand, p.operand2)),
    };
    Ok(format!("{col} {op} {}", p.operand))
}

fn col_name(proj: &ProjectionInfo, idx: usize) -> Result<&str> {
    Ok(proj.column(idx)?.name.as_str())
}

/// `QuerySpec` → canonical scan text (bare column names).
pub fn print_query(store: &Store, q: &QuerySpec) -> Result<String> {
    let proj = store.projection(q.table)?;
    let select = match q.aggregate {
        Some(agg) => format!(
            "{}, {}({})",
            col_name(&proj, agg.group_col)?,
            agg.func.name().to_ascii_uppercase(),
            col_name(&proj, agg.value_col)?
        ),
        None => {
            if q.output.is_empty() {
                return Err(Error::invalid(
                    "cannot print a query with no output columns",
                ));
            }
            let cols: Result<Vec<&str>> = q.output.iter().map(|&c| col_name(&proj, c)).collect();
            cols?.join(", ")
        }
    };
    let mut text = format!("SELECT {select} FROM {}", proj.name);
    for (i, (col, pred)) in q.filters.iter().enumerate() {
        let kw = if i == 0 { "WHERE" } else { "AND" };
        text.push_str(&format!(
            " {kw} {}",
            pred_text(col_name(&proj, *col)?, pred)?
        ));
    }
    if let Some(agg) = q.aggregate {
        text.push_str(&format!(" GROUP BY {}", col_name(&proj, agg.group_col)?));
    }
    Ok(text)
}

/// `JoinTreeSpec` → canonical join text (qualified column names).
pub fn print_join_tree(store: &Store, tree: &JoinTreeSpec) -> Result<String> {
    tree.validate()?;
    if tree.output_width() == 0 {
        return Err(Error::invalid(
            "cannot print a join tree with no output columns",
        ));
    }
    let base = store.projection(tree.base())?;
    let inners: Result<Vec<ProjectionInfo>> = tree
        .edges
        .iter()
        .map(|e| store.projection(e.right))
        .collect();
    let inners = inners?;

    // Flat output index → (table slot, column index); slot 0 is the base.
    let unflatten = |flat: usize| -> (usize, usize) {
        let mut k = 0;
        for &c in &tree.edges[0].left_output {
            if k == flat {
                return (0, c);
            }
            k += 1;
        }
        for (ei, e) in tree.edges.iter().enumerate() {
            for &c in &e.right_output {
                if k == flat {
                    return (ei + 1, c);
                }
                k += 1;
            }
        }
        unreachable!("validate() bounds aggregate columns to the output width")
    };
    let qualified = |slot: usize, idx: usize| -> Result<String> {
        let (name, proj) = if slot == 0 {
            (&base.name, &base)
        } else {
            (&inners[slot - 1].name, &inners[slot - 1])
        };
        Ok(format!("{name}.{}", col_name(proj, idx)?))
    };

    let select = match tree.aggregate {
        Some(agg) => {
            let gpair = unflatten(agg.group_col);
            let vpair = unflatten(agg.value_col);
            // The dialect's aggregated join selects exactly the group
            // column and the aggregate, so a faithful roundtrip needs the
            // output lists to hold exactly those columns (slot-major,
            // group before value within a table — what lowering builds).
            let mut pairs = vec![gpair];
            if vpair != gpair {
                pairs.push(vpair);
            }
            pairs.sort_by_key(|&(slot, _)| slot);
            let canonical = (0..tree.output_width()).map(&unflatten).collect::<Vec<_>>();
            if pairs != canonical {
                return Err(Error::invalid(
                    "cannot print an aggregated join tree whose outputs are not \
                     exactly the group and aggregate columns",
                ));
            }
            format!(
                "{}, {}({})",
                qualified(gpair.0, gpair.1)?,
                agg.func.name().to_ascii_uppercase(),
                qualified(vpair.0, vpair.1)?
            )
        }
        None => {
            let mut select = Vec::new();
            for &c in &tree.edges[0].left_output {
                select.push(format!("{}.{}", base.name, col_name(&base, c)?));
            }
            for (e, inner) in tree.edges.iter().zip(&inners) {
                for &c in &e.right_output {
                    select.push(format!("{}.{}", inner.name, col_name(inner, c)?));
                }
            }
            select.join(", ")
        }
    };

    let mut text = format!("SELECT {select} FROM {}", base.name);
    for (e, inner) in tree.edges.iter().zip(&inners) {
        let left = store.projection(e.left)?;
        text.push_str(&format!(
            " JOIN {} ON {}.{} = {}.{}",
            inner.name,
            left.name,
            col_name(&left, e.left_key)?,
            inner.name,
            col_name(inner, e.right_key)?
        ));
    }
    // Predicates in slot order — base, then each inner table in spec
    // order. Lowering reassigns each predicate to its table by name, so
    // this order is canonical without being load-bearing.
    let mut preds = Vec::new();
    if let Some((col, pred)) = &tree.edges[0].left_filter {
        preds.push(pred_text(&qualified(0, *col)?, pred)?);
    }
    for (ei, e) in tree.edges.iter().enumerate() {
        if let Some((col, pred)) = &e.right_filter {
            preds.push(pred_text(&qualified(ei + 1, *col)?, pred)?);
        }
    }
    for (i, p) in preds.iter().enumerate() {
        let kw = if i == 0 { "WHERE" } else { "AND" };
        text.push_str(&format!(" {kw} {p}"));
    }
    if let Some(agg) = tree.aggregate {
        let (gslot, gidx) = unflatten(agg.group_col);
        text.push_str(&format!(" GROUP BY {}", qualified(gslot, gidx)?));
    }
    Ok(text)
}
