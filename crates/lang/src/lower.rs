//! Lowering: parsed AST + catalog → engine specs.

use matstrat_common::{CompareOp, Predicate};
use matstrat_core::{JoinSpec, JoinTreeSpec, QuerySpec};
use matstrat_storage::{ProjectionInfo, Store};

use crate::ast::{ColRef, DeleteAst, InsertAst, PredClause, SelectAst, SelectItem, StatementAst};
use crate::error::ParseError;
use crate::parse::parse;

/// The compiled form is the engine's own [`Statement`]: exactly the spec
/// [`Database::execute`](matstrat_core::Database::execute) already plans
/// and runs — the text layer adds no execution paths of its own.
pub use matstrat_core::Statement;

/// Compile query text against `store`'s catalog.
pub fn compile(store: &Store, text: &str) -> Result<Statement, ParseError> {
    match parse(text)? {
        StatementAst::Select(ast) if ast.joins.is_empty() => {
            lower_scan(store, text, &ast).map(Statement::Select)
        }
        StatementAst::Select(ast) => lower_join_tree(store, text, &ast).map(Statement::JoinTree),
        StatementAst::Insert(ast) => lower_insert(store, text, &ast),
        StatementAst::Delete(ast) => lower_delete(store, text, &ast),
    }
}

fn predicate(p: &PredClause) -> Predicate {
    match p.op {
        CompareOp::Lt => Predicate::lt(p.lo),
        CompareOp::Le => Predicate::le(p.lo),
        CompareOp::Gt => Predicate::gt(p.lo),
        CompareOp::Ge => Predicate::ge(p.lo),
        CompareOp::Eq => Predicate::eq(p.lo),
        CompareOp::Ne => Predicate::ne(p.lo),
        CompareOp::Between => Predicate::between(p.lo, p.hi),
    }
}

fn lookup_projection(
    store: &Store,
    src: &str,
    name: &str,
    at: usize,
) -> Result<ProjectionInfo, ParseError> {
    store
        .projection_by_name(name)
        .map_err(|_| ParseError::at(src, at, format!("unknown projection '{name}'")))
}

/// Resolve `col` against one projection (the scan case). A qualifier, if
/// present, must name that projection.
fn resolve_in(src: &str, proj: &ProjectionInfo, col: &ColRef) -> Result<usize, ParseError> {
    if let Some(t) = &col.table {
        if *t != proj.name {
            return Err(ParseError::at(
                src,
                col.at,
                format!("unknown table '{t}' in this query (FROM {})", proj.name),
            ));
        }
    }
    column_index(src, proj, col)
}

fn column_index(src: &str, proj: &ProjectionInfo, col: &ColRef) -> Result<usize, ParseError> {
    proj.column_by_name(&col.column)
        .map(|(idx, _)| idx)
        .ok_or_else(|| {
            ParseError::at(
                src,
                col.at,
                format!("no column '{}' in projection '{}'", col.column, proj.name),
            )
        })
}

fn lower_scan(store: &Store, src: &str, ast: &SelectAst) -> Result<QuerySpec, ParseError> {
    let proj = lookup_projection(store, src, &ast.from, ast.from_at)?;
    let mut q = QuerySpec::select(proj.id, Vec::new());
    for p in &ast.preds {
        let col = resolve_in(src, &proj, &p.col)?;
        q = q.filter(col, predicate(p));
    }

    if let Some(group) = &ast.group_by {
        let group_col = resolve_in(src, &proj, group)?;
        // The engine's aggregated scan is exactly `SELECT g, F(v) ...
        // GROUP BY g`; hold the select list to that shape.
        if ast.items.len() != 2 {
            return Err(ParseError::at(
                src,
                ast.group_at,
                "GROUP BY queries must select exactly the group column and one aggregate",
            ));
        }
        let first = match &ast.items[0] {
            SelectItem::Col(c) => resolve_in(src, &proj, c)?,
            SelectItem::Agg { at, .. } => {
                return Err(ParseError::at(
                    src,
                    *at,
                    "the first select item must be the GROUP BY column, not an aggregate",
                ))
            }
        };
        if first != group_col {
            return Err(ParseError::at(
                src,
                ast.items[0].at(),
                "the first select item must be the GROUP BY column",
            ));
        }
        let (func, value_col) = match &ast.items[1] {
            SelectItem::Agg { func, arg, .. } => (*func, resolve_in(src, &proj, arg)?),
            SelectItem::Col(c) => {
                return Err(ParseError::at(
                    src,
                    c.at,
                    "the second select item must be an aggregate (SUM/COUNT/MIN/MAX)",
                ))
            }
        };
        return Ok(q.aggregate_fn(group_col, value_col, func));
    }

    let mut output = Vec::with_capacity(ast.items.len());
    for item in &ast.items {
        match item {
            SelectItem::Col(c) => output.push(resolve_in(src, &proj, c)?),
            SelectItem::Agg { at, .. } => {
                return Err(ParseError::at(src, *at, "aggregates require GROUP BY"))
            }
        }
    }
    q.output = output;
    Ok(q)
}

impl SelectItem {
    fn at(&self) -> usize {
        match self {
            SelectItem::Col(c) => c.at,
            SelectItem::Agg { at, .. } => *at,
        }
    }
}

fn lower_insert(store: &Store, src: &str, ast: &InsertAst) -> Result<Statement, ParseError> {
    let proj = lookup_projection(store, src, &ast.table, ast.table_at)?;
    let width = proj.columns.len();
    let mut rows = Vec::with_capacity(ast.rows.len());
    for (row, at) in &ast.rows {
        if row.len() != width {
            return Err(ParseError::at(
                src,
                *at,
                format!(
                    "projection '{}' has {width} column{}, this tuple has {}",
                    proj.name,
                    if width == 1 { "" } else { "s" },
                    row.len()
                ),
            ));
        }
        rows.push(row.clone());
    }
    Ok(Statement::Insert {
        table: proj.id,
        rows,
    })
}

fn lower_delete(store: &Store, src: &str, ast: &DeleteAst) -> Result<Statement, ParseError> {
    let proj = lookup_projection(store, src, &ast.table, ast.table_at)?;
    let mut filters = Vec::with_capacity(ast.preds.len());
    for p in &ast.preds {
        filters.push((resolve_in(src, &proj, &p.col)?, predicate(p)));
    }
    Ok(Statement::Delete {
        table: proj.id,
        filters,
    })
}

fn lower_join_tree(store: &Store, src: &str, ast: &SelectAst) -> Result<JoinTreeSpec, ParseError> {
    // The tables in scope, in introduction order: FROM, then each JOIN.
    let mut scope: Vec<ProjectionInfo> =
        vec![lookup_projection(store, src, &ast.from, ast.from_at)?];
    for j in &ast.joins {
        if scope.iter().any(|p| p.name == j.table) {
            return Err(ParseError::at(
                src,
                j.table_at,
                format!("table '{}' appears twice in this query", j.table),
            ));
        }
        scope.push(lookup_projection(store, src, &j.table, j.table_at)?);
    }

    // Multi-table resolution: a qualifier names its table outright; a
    // bare column is legal only when exactly one table in scope has it.
    let resolve = |col: &ColRef, upto: usize| -> Result<(usize, usize), ParseError> {
        if let Some(t) = &col.table {
            let slot = scope[..upto]
                .iter()
                .position(|p| p.name == *t)
                .ok_or_else(|| {
                    ParseError::at(src, col.at, format!("unknown table '{t}' in this query"))
                })?;
            return Ok((slot, column_index(src, &scope[slot], col)?));
        }
        let mut hits = scope[..upto]
            .iter()
            .enumerate()
            .filter_map(|(slot, p)| Some((slot, p.column_by_name(&col.column)?.0)));
        match (hits.next(), hits.next()) {
            (Some(only), None) => Ok(only),
            (None, _) => Err(ParseError::at(
                src,
                col.at,
                format!("no column '{}' in any table of this query", col.column),
            )),
            (Some((a, _)), Some((b, _))) => Err(ParseError::at(
                src,
                col.at,
                format!(
                    "ambiguous column '{}': qualify as table.column (found in '{}' and '{}')",
                    col.column, scope[a].name, scope[b].name
                ),
            )),
        }
    };

    let mut edges = Vec::with_capacity(ast.joins.len());
    for (i, j) in ast.joins.iter().enumerate() {
        // Scope slot of this edge's inner table (FROM is slot 0).
        let right_slot = i + 1;
        // One ON side names the fresh table, the other an earlier one.
        let (lhs, rhs) = (
            resolve(&j.lhs, right_slot + 1)?,
            resolve(&j.rhs, right_slot + 1)?,
        );
        let ((left_slot, left_key), (_, right_key)) =
            match (lhs.0 == right_slot, rhs.0 == right_slot) {
                (false, true) => (lhs, rhs),
                (true, false) => (rhs, lhs),
                _ => {
                    return Err(ParseError::at(
                        src,
                        j.lhs.at,
                        format!(
                            "ON must equate a column of '{}' with a column of an earlier table",
                            j.table
                        ),
                    ))
                }
            };
        // left_slot ≤ i here: slot 0 is the base (a star edge), any
        // other slot is an earlier edge's inner table (a snowflake hop,
        // keyed through that edge's matched positions).
        edges.push(JoinSpec {
            left: scope[left_slot].id,
            right: scope[right_slot].id,
            left_key,
            right_key,
            left_filter: None,
            right_filter: None,
            left_output: Vec::new(),
            right_output: Vec::new(),
        });
    }

    // Each WHERE conjunct filters the table its column resolves to: the
    // base predicate lands on edge 0's `left_filter`, a dimension
    // predicate on that edge's `right_filter` (applied as a semi-join
    // reduction at build time). The engine takes one predicate per table.
    for p in &ast.preds {
        let (slot, col) = resolve(&p.col, scope.len())?;
        let target = if slot == 0 {
            &mut edges[0].left_filter
        } else {
            &mut edges[slot - 1].right_filter
        };
        if target.is_some() {
            return Err(ParseError::at(
                src,
                p.col.at,
                format!(
                    "table '{}' already has a WHERE predicate (join queries take \
                     at most one per table)",
                    scope[slot].name
                ),
            ));
        }
        *target = Some((col, predicate(p)));
    }

    if let Some(group) = &ast.group_by {
        // GROUP BY over a join: the select list must be exactly the
        // group column and one aggregate, same shape as the scan case.
        if ast.items.len() != 2 {
            return Err(ParseError::at(
                src,
                ast.group_at,
                "GROUP BY queries must select exactly the group column and one aggregate",
            ));
        }
        let gpair = resolve(group, scope.len())?;
        let first = match &ast.items[0] {
            SelectItem::Col(c) => resolve(c, scope.len())?,
            SelectItem::Agg { at, .. } => {
                return Err(ParseError::at(
                    src,
                    *at,
                    "the first select item must be the GROUP BY column, not an aggregate",
                ))
            }
        };
        if first != gpair {
            return Err(ParseError::at(
                src,
                ast.items[0].at(),
                "the first select item must be the GROUP BY column",
            ));
        }
        let (func, vpair) = match &ast.items[1] {
            SelectItem::Agg { func, arg, .. } => (*func, resolve(arg, scope.len())?),
            SelectItem::Col(c) => {
                return Err(ParseError::at(
                    src,
                    c.at,
                    "the second select item must be an aggregate (SUM/COUNT/MIN/MAX)",
                ))
            }
        };
        // Canonical output lists: just the columns the aggregate needs,
        // slot-major, group before value within a table — the same shape
        // the printer emits, so print/compile stay exact inverses.
        let mut pairs = vec![gpair];
        if vpair != gpair {
            pairs.push(vpair);
        }
        pairs.sort_by_key(|&(slot, _)| slot);
        for &(slot, idx) in &pairs {
            if slot == 0 {
                edges[0].left_output.push(idx);
            } else {
                edges[slot - 1].right_output.push(idx);
            }
        }
        let flat = |want: (usize, usize)| -> usize {
            let mut k = 0;
            for &c in &edges[0].left_output {
                if want == (0, c) {
                    return k;
                }
                k += 1;
            }
            for (ei, e) in edges.iter().enumerate() {
                for &c in &e.right_output {
                    if want == (ei + 1, c) {
                        return k;
                    }
                    k += 1;
                }
            }
            unreachable!("aggregate columns were just added to the outputs")
        };
        let (gflat, vflat) = (flat(gpair), flat(vpair));
        let tree = JoinTreeSpec::new(edges).aggregate_fn(gflat, vflat, func);
        tree.validate()
            .map_err(|e| ParseError::at(src, ast.from_at, format!("invalid join tree: {e}")))?;
        return Ok(tree);
    }

    // Select list: base columns first, then each joined table's columns,
    // in join order — the fixed output order of the tree executor.
    let mut current_slot = 0usize;
    for item in &ast.items {
        let col = match item {
            SelectItem::Col(c) => c,
            SelectItem::Agg { at, .. } => {
                return Err(ParseError::at(src, *at, "aggregates require GROUP BY"))
            }
        };
        let (slot, idx) = resolve(col, scope.len())?;
        if slot < current_slot {
            return Err(ParseError::at(
                src,
                col.at,
                "select columns must appear in join order: base table columns first, \
                 then each joined table's columns",
            ));
        }
        current_slot = slot;
        if slot == 0 {
            edges[0].left_output.push(idx);
        } else {
            edges[slot - 1].right_output.push(idx);
        }
    }

    let tree = JoinTreeSpec::new(edges);
    tree.validate()
        .map_err(|e| ParseError::at(src, ast.from_at, format!("invalid join tree: {e}")))?;
    Ok(tree)
}
