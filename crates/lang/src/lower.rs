//! Lowering: parsed AST + catalog → engine specs.

use matstrat_common::{CompareOp, Predicate, TableId, Value};
use matstrat_core::{JoinSpec, JoinTreeSpec, QuerySpec, Request};
use matstrat_storage::{ProjectionInfo, Store};

use crate::ast::{ColRef, DeleteAst, InsertAst, PredClause, SelectAst, SelectItem, StatementAst};
use crate::error::ParseError;
use crate::parse::parse;

/// A compiled statement: exactly the spec the engine already plans and
/// executes — the text layer adds no execution paths of its own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A (possibly aggregated) selection over one projection.
    Select(QuerySpec),
    /// A left-deep tree of equi-joins.
    JoinTree(JoinTreeSpec),
    /// Rows appended to a table's delta store (and WAL).
    Insert {
        table: TableId,
        rows: Vec<Vec<Value>>,
    },
    /// Predicate-qualified row deletion.
    Delete {
        table: TableId,
        filters: Vec<(usize, Predicate)>,
    },
}

impl Statement {
    /// The query-service request this statement executes as.
    pub fn into_request(self) -> Request {
        match self {
            Statement::Select(q) => Request::Scan(q),
            Statement::JoinTree(t) => Request::JoinTree(t),
            Statement::Insert { table, rows } => Request::Insert { table, rows },
            Statement::Delete { table, filters } => Request::Delete { table, filters },
        }
    }
}

/// Compile query text against `store`'s catalog.
pub fn compile(store: &Store, text: &str) -> Result<Statement, ParseError> {
    match parse(text)? {
        StatementAst::Select(ast) if ast.joins.is_empty() => {
            lower_scan(store, text, &ast).map(Statement::Select)
        }
        StatementAst::Select(ast) => lower_join_tree(store, text, &ast).map(Statement::JoinTree),
        StatementAst::Insert(ast) => lower_insert(store, text, &ast),
        StatementAst::Delete(ast) => lower_delete(store, text, &ast),
    }
}

fn predicate(p: &PredClause) -> Predicate {
    match p.op {
        CompareOp::Lt => Predicate::lt(p.lo),
        CompareOp::Le => Predicate::le(p.lo),
        CompareOp::Gt => Predicate::gt(p.lo),
        CompareOp::Ge => Predicate::ge(p.lo),
        CompareOp::Eq => Predicate::eq(p.lo),
        CompareOp::Ne => Predicate::ne(p.lo),
        CompareOp::Between => Predicate::between(p.lo, p.hi),
    }
}

fn lookup_projection(
    store: &Store,
    src: &str,
    name: &str,
    at: usize,
) -> Result<ProjectionInfo, ParseError> {
    store
        .projection_by_name(name)
        .map_err(|_| ParseError::at(src, at, format!("unknown projection '{name}'")))
}

/// Resolve `col` against one projection (the scan case). A qualifier, if
/// present, must name that projection.
fn resolve_in(src: &str, proj: &ProjectionInfo, col: &ColRef) -> Result<usize, ParseError> {
    if let Some(t) = &col.table {
        if *t != proj.name {
            return Err(ParseError::at(
                src,
                col.at,
                format!("unknown table '{t}' in this query (FROM {})", proj.name),
            ));
        }
    }
    column_index(src, proj, col)
}

fn column_index(src: &str, proj: &ProjectionInfo, col: &ColRef) -> Result<usize, ParseError> {
    proj.column_by_name(&col.column)
        .map(|(idx, _)| idx)
        .ok_or_else(|| {
            ParseError::at(
                src,
                col.at,
                format!("no column '{}' in projection '{}'", col.column, proj.name),
            )
        })
}

fn lower_scan(store: &Store, src: &str, ast: &SelectAst) -> Result<QuerySpec, ParseError> {
    let proj = lookup_projection(store, src, &ast.from, ast.from_at)?;
    let mut q = QuerySpec::select(proj.id, Vec::new());
    for p in &ast.preds {
        let col = resolve_in(src, &proj, &p.col)?;
        q = q.filter(col, predicate(p));
    }

    if let Some(group) = &ast.group_by {
        let group_col = resolve_in(src, &proj, group)?;
        // The engine's aggregated scan is exactly `SELECT g, F(v) ...
        // GROUP BY g`; hold the select list to that shape.
        if ast.items.len() != 2 {
            return Err(ParseError::at(
                src,
                ast.group_at,
                "GROUP BY queries must select exactly the group column and one aggregate",
            ));
        }
        let first = match &ast.items[0] {
            SelectItem::Col(c) => resolve_in(src, &proj, c)?,
            SelectItem::Agg { at, .. } => {
                return Err(ParseError::at(
                    src,
                    *at,
                    "the first select item must be the GROUP BY column, not an aggregate",
                ))
            }
        };
        if first != group_col {
            return Err(ParseError::at(
                src,
                ast.items[0].at(),
                "the first select item must be the GROUP BY column",
            ));
        }
        let (func, value_col) = match &ast.items[1] {
            SelectItem::Agg { func, arg, .. } => (*func, resolve_in(src, &proj, arg)?),
            SelectItem::Col(c) => {
                return Err(ParseError::at(
                    src,
                    c.at,
                    "the second select item must be an aggregate (SUM/COUNT/MIN/MAX)",
                ))
            }
        };
        return Ok(q.aggregate_fn(group_col, value_col, func));
    }

    let mut output = Vec::with_capacity(ast.items.len());
    for item in &ast.items {
        match item {
            SelectItem::Col(c) => output.push(resolve_in(src, &proj, c)?),
            SelectItem::Agg { at, .. } => {
                return Err(ParseError::at(src, *at, "aggregates require GROUP BY"))
            }
        }
    }
    q.output = output;
    Ok(q)
}

impl SelectItem {
    fn at(&self) -> usize {
        match self {
            SelectItem::Col(c) => c.at,
            SelectItem::Agg { at, .. } => *at,
        }
    }
}

fn lower_insert(store: &Store, src: &str, ast: &InsertAst) -> Result<Statement, ParseError> {
    let proj = lookup_projection(store, src, &ast.table, ast.table_at)?;
    let width = proj.columns.len();
    let mut rows = Vec::with_capacity(ast.rows.len());
    for (row, at) in &ast.rows {
        if row.len() != width {
            return Err(ParseError::at(
                src,
                *at,
                format!(
                    "projection '{}' has {width} column{}, this tuple has {}",
                    proj.name,
                    if width == 1 { "" } else { "s" },
                    row.len()
                ),
            ));
        }
        rows.push(row.clone());
    }
    Ok(Statement::Insert {
        table: proj.id,
        rows,
    })
}

fn lower_delete(store: &Store, src: &str, ast: &DeleteAst) -> Result<Statement, ParseError> {
    let proj = lookup_projection(store, src, &ast.table, ast.table_at)?;
    let mut filters = Vec::with_capacity(ast.preds.len());
    for p in &ast.preds {
        filters.push((resolve_in(src, &proj, &p.col)?, predicate(p)));
    }
    Ok(Statement::Delete {
        table: proj.id,
        filters,
    })
}

fn lower_join_tree(store: &Store, src: &str, ast: &SelectAst) -> Result<JoinTreeSpec, ParseError> {
    if let Some(g) = &ast.group_by {
        return Err(ParseError::at(
            src,
            g.at,
            "GROUP BY is not supported with JOIN",
        ));
    }

    // The tables in scope, in introduction order: FROM, then each JOIN.
    let mut scope: Vec<ProjectionInfo> =
        vec![lookup_projection(store, src, &ast.from, ast.from_at)?];
    for j in &ast.joins {
        if scope.iter().any(|p| p.name == j.table) {
            return Err(ParseError::at(
                src,
                j.table_at,
                format!("table '{}' appears twice in this query", j.table),
            ));
        }
        scope.push(lookup_projection(store, src, &j.table, j.table_at)?);
    }

    // Multi-table resolution requires qualified names throughout.
    let resolve = |col: &ColRef, upto: usize| -> Result<(usize, usize), ParseError> {
        let t = col.table.as_ref().ok_or_else(|| {
            ParseError::at(
                src,
                col.at,
                format!(
                    "unqualified column '{}': qualify columns as table.column in multi-table queries",
                    col.column
                ),
            )
        })?;
        let slot = scope[..upto]
            .iter()
            .position(|p| p.name == *t)
            .ok_or_else(|| {
                ParseError::at(src, col.at, format!("unknown table '{t}' in this query"))
            })?;
        Ok((slot, column_index(src, &scope[slot], col)?))
    };

    let mut edges = Vec::with_capacity(ast.joins.len());
    for (i, j) in ast.joins.iter().enumerate() {
        // Scope slot of this edge's inner table (FROM is slot 0).
        let right_slot = i + 1;
        // One ON side names the fresh table, the other an earlier one.
        let (lhs, rhs) = (
            resolve(&j.lhs, right_slot + 1)?,
            resolve(&j.rhs, right_slot + 1)?,
        );
        let ((left_slot, left_key), (_, right_key)) =
            match (lhs.0 == right_slot, rhs.0 == right_slot) {
                (false, true) => (lhs, rhs),
                (true, false) => (rhs, lhs),
                _ => {
                    return Err(ParseError::at(
                        src,
                        j.lhs.at,
                        format!(
                            "ON must equate a column of '{}' with a column of an earlier table",
                            j.table
                        ),
                    ))
                }
            };
        // left_slot ≤ i here: slot 0 is the base (a star edge), any
        // other slot is an earlier edge's inner table (a snowflake hop,
        // keyed through that edge's matched positions).
        edges.push(JoinSpec {
            left: scope[left_slot].id,
            right: scope[right_slot].id,
            left_key,
            right_key,
            left_filter: None,
            left_output: Vec::new(),
            right_output: Vec::new(),
        });
    }

    // The engine's join tree takes at most one base-table predicate.
    match ast.preds.len() {
        0 => {}
        1 => {
            let p = &ast.preds[0];
            let (slot, col) = resolve(&p.col, scope.len())?;
            if slot != 0 {
                return Err(ParseError::at(
                    src,
                    p.col.at,
                    format!(
                        "WHERE in a join query may only filter the base table '{}'",
                        scope[0].name
                    ),
                ));
            }
            edges[0].left_filter = Some((col, predicate(p)));
        }
        _ => {
            return Err(ParseError::at(
                src,
                ast.preds[1].col.at,
                "join queries support a single WHERE predicate (on the base table)",
            ))
        }
    }

    // Select list: base columns first, then each joined table's columns,
    // in join order — the fixed output order of the tree executor.
    let mut current_slot = 0usize;
    for item in &ast.items {
        let col = match item {
            SelectItem::Col(c) => c,
            SelectItem::Agg { at, .. } => {
                return Err(ParseError::at(src, *at, "aggregates require GROUP BY"))
            }
        };
        let (slot, idx) = resolve(col, scope.len())?;
        if slot < current_slot {
            return Err(ParseError::at(
                src,
                col.at,
                "select columns must appear in join order: base table columns first, \
                 then each joined table's columns",
            ));
        }
        current_slot = slot;
        if slot == 0 {
            edges[0].left_output.push(idx);
        } else {
            edges[slot - 1].right_output.push(idx);
        }
    }

    let tree = JoinTreeSpec::new(edges);
    tree.validate()
        .map_err(|e| ParseError::at(src, ast.from_at, format!("invalid join tree: {e}")))?;
    Ok(tree)
}
