//! The parsed (pre-catalog) form of a query. Every node keeps the byte
//! offset of its defining token so lowering errors can point at source.

use matstrat_common::{CompareOp, Value};
use matstrat_core::AggFunc;

/// `column` or `table.column`.
#[derive(Debug, Clone)]
pub(crate) struct ColRef {
    pub table: Option<String>,
    pub column: String,
    pub at: usize,
}

/// One entry of the select list.
#[derive(Debug, Clone)]
pub(crate) enum SelectItem {
    Col(ColRef),
    Agg {
        func: AggFunc,
        arg: ColRef,
        at: usize,
    },
}

/// `JOIN table ON a = b`.
#[derive(Debug, Clone)]
pub(crate) struct JoinClause {
    pub table: String,
    pub table_at: usize,
    pub lhs: ColRef,
    pub rhs: ColRef,
}

/// One WHERE conjunct: a SARGable comparison against constants.
#[derive(Debug, Clone)]
pub(crate) struct PredClause {
    pub col: ColRef,
    pub op: CompareOp,
    /// Operand (lower bound for BETWEEN).
    pub lo: Value,
    /// Upper bound for BETWEEN; equal to `lo` otherwise.
    pub hi: Value,
}

/// A full `SELECT` statement, before name resolution.
#[derive(Debug, Clone)]
pub(crate) struct SelectAst {
    pub items: Vec<SelectItem>,
    pub from: String,
    pub from_at: usize,
    pub joins: Vec<JoinClause>,
    pub preds: Vec<PredClause>,
    pub group_by: Option<ColRef>,
    pub group_at: usize,
}

/// `INSERT INTO table VALUES (..), (..)`, before name resolution. Each
/// row keeps the offset of its opening parenthesis so arity errors can
/// point at the offending tuple.
#[derive(Debug, Clone)]
pub(crate) struct InsertAst {
    pub table: String,
    pub table_at: usize,
    pub rows: Vec<(Vec<Value>, usize)>,
}

/// `DELETE FROM table [WHERE ...]`, before name resolution.
#[derive(Debug, Clone)]
pub(crate) struct DeleteAst {
    pub table: String,
    pub table_at: usize,
    pub preds: Vec<PredClause>,
}

/// Any parsed statement.
#[derive(Debug, Clone)]
pub(crate) enum StatementAst {
    Select(SelectAst),
    Insert(InsertAst),
    Delete(DeleteAst),
}
