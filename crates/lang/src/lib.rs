//! The text front-end: a small SQL dialect for the matstrat engine.
//!
//! The engine plans and executes two query shapes — (optionally
//! aggregated) selections over one projection
//! ([`matstrat_core::QuerySpec`]) and left-deep equi-join trees
//! ([`matstrat_core::JoinTreeSpec`]). This crate gives both a textual
//! form:
//!
//! ```sql
//! SELECT shipdate, quantity FROM lineitem
//!   WHERE shipdate BETWEEN 9000 AND 9030 AND quantity < 25
//!
//! SELECT shipdate, SUM(price) FROM lineitem
//!   WHERE retflag = 1 GROUP BY shipdate
//!
//! SELECT l.quantity, o.odate, c.nation FROM l
//!   JOIN o ON l.okey = o.okey
//!   JOIN c ON o.ckey = c.ckey
//!   WHERE l.shipdate < 9100
//! ```
//!
//! [`compile`] runs a hand-rolled lexer and recursive-descent parser,
//! then lowers the tree against the store's catalog (names → column
//! indices) into a [`Statement`] holding exactly the spec the engine
//! already executes — the text layer adds **zero** execution paths.
//! Errors carry the line/column and a caret snippet ([`ParseError`]).
//!
//! The inverse direction, [`print_query`] / [`print_join_tree`], renders
//! a spec back to canonical text; `tests/roundtrip.rs` proves
//! `compile(print(spec)) == spec` by property over generated specs.
//!
//! Dialect limits mirror the engine's shapes (each rejected with a
//! specific message): predicates compare one column to integer
//! constants; `GROUP BY` selects exactly the group column and one
//! aggregate (over a single table or a join tree alike); join queries
//! take at most one `WHERE` predicate per table — the base predicate
//! filters the probe side, a dimension predicate semi-join-reduces its
//! hash table at build time — and bare columns resolve only when
//! exactly one table in scope has them (ambiguity is a caret error).

mod ast;
mod error;
mod lex;
mod lower;
mod parse;
mod print;

pub use error::ParseError;
pub use lower::{compile, Statement};
pub use print::{print_join_tree, print_query, print_statement};
