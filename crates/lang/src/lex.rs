//! The lexer: query text → located tokens.
//!
//! Lexing walks `char_indices`, never raw bytes: a multi-byte character
//! in the input (a `π` in an identifier position, a typo'd `≤`) is
//! reported as itself — not as its mangled first byte — and every
//! token's recorded offset is a character boundary, so the caret in
//! [`ParseError`]'s snippet lands on the right column.

use matstrat_common::Value;

use crate::error::ParseError;

/// One token of the dialect. Keywords are case-insensitive; identifiers
/// keep their spelling (the catalog is case-sensitive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Int(Value),
    Select,
    From,
    Join,
    On,
    Where,
    Group,
    By,
    And,
    Between,
    Sum,
    Count,
    Min,
    Max,
    Insert,
    Into,
    Values,
    Delete,
    Comma,
    Dot,
    LParen,
    RParen,
    Eq,
    Lt,
    Le,
    Gt,
    Ge,
    Ne,
    Eof,
}

impl Tok {
    /// How the token reads in an error message.
    pub(crate) fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier '{s}'"),
            Tok::Int(v) => format!("integer {v}"),
            Tok::Select => "SELECT".into(),
            Tok::From => "FROM".into(),
            Tok::Join => "JOIN".into(),
            Tok::On => "ON".into(),
            Tok::Where => "WHERE".into(),
            Tok::Group => "GROUP".into(),
            Tok::By => "BY".into(),
            Tok::And => "AND".into(),
            Tok::Between => "BETWEEN".into(),
            Tok::Sum => "SUM".into(),
            Tok::Count => "COUNT".into(),
            Tok::Min => "MIN".into(),
            Tok::Max => "MAX".into(),
            Tok::Insert => "INSERT".into(),
            Tok::Into => "INTO".into(),
            Tok::Values => "VALUES".into(),
            Tok::Delete => "DELETE".into(),
            Tok::Comma => "','".into(),
            Tok::Dot => "'.'".into(),
            Tok::LParen => "'('".into(),
            Tok::RParen => "')'".into(),
            Tok::Eq => "'='".into(),
            Tok::Lt => "'<'".into(),
            Tok::Le => "'<='".into(),
            Tok::Gt => "'>'".into(),
            Tok::Ge => "'>='".into(),
            Tok::Ne => "'!='".into(),
            Tok::Eof => "end of query".into(),
        }
    }
}

/// A token plus the byte offset where it starts (always a character
/// boundary of the source).
#[derive(Debug, Clone)]
pub(crate) struct Lexed {
    pub tok: Tok,
    pub at: usize,
}

fn keyword(word: &str) -> Option<Tok> {
    match word.to_ascii_uppercase().as_str() {
        "SELECT" => Some(Tok::Select),
        "FROM" => Some(Tok::From),
        "JOIN" => Some(Tok::Join),
        "ON" => Some(Tok::On),
        "WHERE" => Some(Tok::Where),
        "GROUP" => Some(Tok::Group),
        "BY" => Some(Tok::By),
        "AND" => Some(Tok::And),
        "BETWEEN" => Some(Tok::Between),
        "SUM" => Some(Tok::Sum),
        "COUNT" => Some(Tok::Count),
        "MIN" => Some(Tok::Min),
        "MAX" => Some(Tok::Max),
        "INSERT" => Some(Tok::Insert),
        "INTO" => Some(Tok::Into),
        "VALUES" => Some(Tok::Values),
        "DELETE" => Some(Tok::Delete),
        _ => None,
    }
}

/// Tokenize `src`, ending with an [`Tok::Eof`] sentinel.
pub(crate) fn lex(src: &str) -> Result<Vec<Lexed>, ParseError> {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let n = chars.len();
    // Byte offset where the character *after* index `i` starts.
    let end_of = |i: usize| chars.get(i).map_or(src.len(), |&(off, _)| off);
    let char_at = |i: usize| chars.get(i).map(|&(_, c)| c);
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let (at, c) = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let tok = match c {
            ',' => {
                i += 1;
                Tok::Comma
            }
            '.' => {
                i += 1;
                Tok::Dot
            }
            '(' => {
                i += 1;
                Tok::LParen
            }
            ')' => {
                i += 1;
                Tok::RParen
            }
            '=' => {
                i += 1;
                Tok::Eq
            }
            '<' => {
                i += 1;
                match char_at(i) {
                    Some('=') => {
                        i += 1;
                        Tok::Le
                    }
                    Some('>') => {
                        i += 1;
                        Tok::Ne
                    }
                    _ => Tok::Lt,
                }
            }
            '>' => {
                i += 1;
                if char_at(i) == Some('=') {
                    i += 1;
                    Tok::Ge
                } else {
                    Tok::Gt
                }
            }
            '!' => {
                i += 1;
                if char_at(i) == Some('=') {
                    i += 1;
                    Tok::Ne
                } else {
                    return Err(ParseError::at(src, at, "expected '=' after '!'"));
                }
            }
            '-' | '0'..='9' => {
                i += 1;
                while char_at(i).is_some_and(|c| c.is_ascii_digit()) {
                    i += 1;
                }
                let text = &src[at..end_of(i)];
                if text == "-" {
                    return Err(ParseError::at(src, at, "expected digits after '-'"));
                }
                let v: Value = text.parse().map_err(|_| {
                    ParseError::at(src, at, format!("integer '{text}' out of range"))
                })?;
                Tok::Int(v)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                i += 1;
                while char_at(i).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                    i += 1;
                }
                let word = &src[at..end_of(i)];
                keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()))
            }
            other => {
                return Err(ParseError::at(
                    src,
                    at,
                    format!("unexpected character '{other}'"),
                ))
            }
        };
        out.push(Lexed { tok, at });
    }
    out.push(Lexed {
        tok: Tok::Eof,
        at: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|l| l.tok).collect()
    }

    #[test]
    fn keywords_are_case_insensitive_but_idents_keep_case() {
        assert_eq!(
            toks("select Foo froM t"),
            vec![
                Tok::Select,
                Tok::Ident("Foo".into()),
                Tok::From,
                Tok::Ident("t".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn write_keywords_lex() {
        assert_eq!(
            toks("insert INTO t values delete"),
            vec![
                Tok::Insert,
                Tok::Into,
                Tok::Ident("t".into()),
                Tok::Values,
                Tok::Delete,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_and_negative_ints() {
        assert_eq!(
            toks("a <= -42 <> != >="),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Int(-42),
                Tok::Ne,
                Tok::Ne,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn bad_characters_point_at_themselves() {
        let e = lex("a ; b").unwrap_err();
        assert_eq!(e.col(), 3);
        assert!(e.message().contains("unexpected character ';'"));
        assert!(lex("a ! b").unwrap_err().message().contains("after '!'"));
        assert!(lex("a - b").unwrap_err().message().contains("digits"));
        let huge = "99999999999999999999";
        assert!(lex(huge).unwrap_err().message().contains("out of range"));
    }

    #[test]
    fn multi_byte_characters_are_reported_whole_at_the_right_column() {
        // 'π' is two bytes; a byte-oriented lexer would report its first
        // byte as 'Ï' and desynchronize every later offset.
        let e = lex("a π b").unwrap_err();
        assert_eq!(e.col(), 3);
        assert!(e.message().contains("unexpected character 'π'"), "{e}");
        // Multi-byte garbage *after* other tokens still points at its
        // own (character) column.
        let e = lex("aa ≤ 3").unwrap_err();
        assert_eq!(e.col(), 4);
        assert!(e.message().contains("unexpected character '≤'"), "{e}");
    }
}
