//! Parse and lowering errors, located in the source text.

use std::fmt;

/// An error produced while compiling query text — lexing, parsing, or
/// lowering against the catalog. Every variant points at the offending
/// token: [`ParseError::line`]/[`ParseError::col`] are 1-based, and
/// `Display` renders the source line with a caret under the position:
///
/// ```text
/// line 1, column 12: expected FROM, found WHERE
///   | SELECT a b WHERE a < 3
///   |            ^
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    msg: String,
    line: usize,
    col: usize,
    src_line: String,
}

impl ParseError {
    /// An error at byte `offset` of `src`.
    pub(crate) fn at(src: &str, offset: usize, msg: impl Into<String>) -> ParseError {
        let offset = offset.min(src.len());
        let before = &src[..offset];
        let line = before.matches('\n').count() + 1;
        let line_start = before.rfind('\n').map_or(0, |p| p + 1);
        let col = src[line_start..offset].chars().count() + 1;
        let src_line = src[line_start..]
            .lines()
            .next()
            .unwrap_or_default()
            .to_string();
        ParseError {
            msg: msg.into(),
            line,
            col,
            src_line,
        }
    }

    /// What went wrong, without the location.
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// 1-based source line of the offending token.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column (in characters) of the offending token.
    pub fn col(&self) -> usize {
        self.col
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "line {}, column {}: {}", self.line, self.col, self.msg)?;
        writeln!(f, "  | {}", self.src_line)?;
        write!(f, "  | {}^", " ".repeat(self.col - 1))
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caret_lands_on_the_offending_column() {
        let src = "SELECT a\nFROM nowhere";
        let e = ParseError::at(src, src.find("nowhere").unwrap(), "unknown projection");
        assert_eq!(e.line(), 2);
        assert_eq!(e.col(), 6);
        assert_eq!(
            e.to_string(),
            "line 2, column 6: unknown projection\n  | FROM nowhere\n  |      ^"
        );
    }

    #[test]
    fn offset_past_the_end_clamps_to_the_last_line() {
        let e = ParseError::at("SELECT", 999, "unexpected end of query");
        assert_eq!(e.line(), 1);
        assert_eq!(e.col(), 7);
        assert!(e.to_string().contains("  | SELECT\n  |       ^"));
    }
}
