//! The recursive-descent parser.
//!
//! ```text
//! statement := select | insert | delete
//! select    := SELECT item (',' item)* FROM ident
//!              (JOIN ident ON colref '=' colref)*
//!              [WHERE pred (AND pred)*]
//!              [GROUP BY colref]
//! insert    := INSERT INTO ident VALUES row (',' row)*
//! row       := '(' int (',' int)* ')'
//! delete    := DELETE FROM ident [WHERE pred (AND pred)*]
//! item      := (SUM|COUNT|MIN|MAX) '(' colref ')' | colref
//! colref    := ident ['.' ident]
//! pred      := colref ('<'|'<='|'>'|'>='|'='|'!='|'<>') int
//!            | colref BETWEEN int AND int
//! ```
//!
//! `BETWEEN lo AND hi` consumes its `AND` greedily, so a following
//! conjunct needs its own `AND` — exactly SQL's reading.

use matstrat_common::{CompareOp, Value};
use matstrat_core::AggFunc;

use crate::ast::{
    ColRef, DeleteAst, InsertAst, JoinClause, PredClause, SelectAst, SelectItem, StatementAst,
};
use crate::error::ParseError;
use crate::lex::{lex, Lexed, Tok};

pub(crate) fn parse(src: &str) -> Result<StatementAst, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { src, toks, pos: 0 };
    let ast = match p.peek() {
        Tok::Insert => StatementAst::Insert(p.insert_statement()?),
        Tok::Delete => StatementAst::Delete(p.delete_statement()?),
        _ => StatementAst::Select(p.statement()?),
    };
    p.expect_eof()?;
    Ok(ast)
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Lexed>,
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn at(&self) -> usize {
        self.toks[self.pos].at
    }

    fn bump(&mut self) -> Lexed {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::at(self.src, self.at(), msg)
    }

    fn expect(&mut self, want: Tok) -> Result<Lexed, ParseError> {
        if *self.peek() == want {
            Ok(self.bump())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                want.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Eof => Ok(()),
            other => Err(self.err(format!("expected end of query, found {}", other.describe()))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, usize), ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let at = self.at();
                self.bump();
                Ok((name, at))
            }
            other => Err(self.err(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn int(&mut self, what: &str) -> Result<Value, ParseError> {
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.err(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn colref(&mut self) -> Result<ColRef, ParseError> {
        let (first, at) = self.ident("a column name")?;
        if *self.peek() == Tok::Dot {
            self.bump();
            let (column, _) = self.ident("a column name after '.'")?;
            Ok(ColRef {
                table: Some(first),
                column,
                at,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
                at,
            })
        }
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        let func = match self.peek() {
            Tok::Sum => Some(AggFunc::Sum),
            Tok::Count => Some(AggFunc::Count),
            Tok::Min => Some(AggFunc::Min),
            Tok::Max => Some(AggFunc::Max),
            _ => None,
        };
        if let Some(func) = func {
            let at = self.at();
            self.bump();
            self.expect(Tok::LParen)?;
            let arg = self.colref()?;
            self.expect(Tok::RParen)?;
            return Ok(SelectItem::Agg { func, arg, at });
        }
        Ok(SelectItem::Col(self.colref()?))
    }

    fn pred(&mut self) -> Result<PredClause, ParseError> {
        let col = self.colref()?;
        let op = match self.peek() {
            Tok::Lt => CompareOp::Lt,
            Tok::Le => CompareOp::Le,
            Tok::Gt => CompareOp::Gt,
            Tok::Ge => CompareOp::Ge,
            Tok::Eq => CompareOp::Eq,
            Tok::Ne => CompareOp::Ne,
            Tok::Between => {
                self.bump();
                let lo = self.int("the BETWEEN lower bound")?;
                self.expect(Tok::And)?;
                let hi = self.int("the BETWEEN upper bound")?;
                return Ok(PredClause {
                    col,
                    op: CompareOp::Between,
                    lo,
                    hi,
                });
            }
            other => {
                return Err(self.err(format!(
                    "expected a comparison operator or BETWEEN, found {}",
                    other.describe()
                )))
            }
        };
        self.bump();
        let v = self.int("an integer constant")?;
        Ok(PredClause {
            col,
            op,
            lo: v,
            hi: v,
        })
    }

    fn statement(&mut self) -> Result<SelectAst, ParseError> {
        self.expect(Tok::Select)?;
        let mut items = vec![self.select_item()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            items.push(self.select_item()?);
        }
        self.expect(Tok::From)?;
        let (from, from_at) = self.ident("a projection name after FROM")?;

        let mut joins = Vec::new();
        while *self.peek() == Tok::Join {
            self.bump();
            let (table, table_at) = self.ident("a projection name after JOIN")?;
            self.expect(Tok::On)?;
            let lhs = self.colref()?;
            self.expect(Tok::Eq)?;
            let rhs = self.colref()?;
            joins.push(JoinClause {
                table,
                table_at,
                lhs,
                rhs,
            });
        }

        let mut preds = Vec::new();
        if *self.peek() == Tok::Where {
            self.bump();
            preds.push(self.pred()?);
            while *self.peek() == Tok::And {
                self.bump();
                preds.push(self.pred()?);
            }
        }

        let mut group_by = None;
        let mut group_at = 0;
        if *self.peek() == Tok::Group {
            group_at = self.at();
            self.bump();
            self.expect(Tok::By)?;
            group_by = Some(self.colref()?);
        }

        Ok(SelectAst {
            items,
            from,
            from_at,
            joins,
            preds,
            group_by,
            group_at,
        })
    }

    fn insert_statement(&mut self) -> Result<InsertAst, ParseError> {
        self.expect(Tok::Insert)?;
        self.expect(Tok::Into)?;
        let (table, table_at) = self.ident("a projection name after INTO")?;
        self.expect(Tok::Values)?;
        let mut rows = vec![self.values_row()?];
        while *self.peek() == Tok::Comma {
            self.bump();
            rows.push(self.values_row()?);
        }
        Ok(InsertAst {
            table,
            table_at,
            rows,
        })
    }

    fn values_row(&mut self) -> Result<(Vec<Value>, usize), ParseError> {
        let at = self.at();
        self.expect(Tok::LParen)?;
        let mut row = vec![self.int("an integer value")?];
        while *self.peek() == Tok::Comma {
            self.bump();
            row.push(self.int("an integer value")?);
        }
        self.expect(Tok::RParen)?;
        Ok((row, at))
    }

    fn delete_statement(&mut self) -> Result<DeleteAst, ParseError> {
        self.expect(Tok::Delete)?;
        self.expect(Tok::From)?;
        let (table, table_at) = self.ident("a projection name after FROM")?;
        let mut preds = Vec::new();
        if *self.peek() == Tok::Where {
            self.bump();
            preds.push(self.pred()?);
            while *self.peek() == Tok::And {
                self.bump();
                preds.push(self.pred()?);
            }
        }
        Ok(DeleteAst {
            table,
            table_at,
            preds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_select(src: &str) -> Result<SelectAst, ParseError> {
        match parse(src)? {
            StatementAst::Select(s) => Ok(s),
            other => panic!("expected a SELECT, parsed {other:?}"),
        }
    }

    #[test]
    fn parses_the_full_shape() {
        let ast = parse_select(
            "SELECT l.a, SUM(l.b) FROM l JOIN o ON l.k = o.k \
             WHERE l.a BETWEEN 1 AND 5 AND l.b != -2 GROUP BY l.a",
        )
        .unwrap();
        assert_eq!(ast.items.len(), 2);
        assert_eq!(ast.joins.len(), 1);
        assert_eq!(ast.preds.len(), 2);
        assert_eq!(ast.preds[0].op, CompareOp::Between);
        assert_eq!((ast.preds[0].lo, ast.preds[0].hi), (1, 5));
        assert_eq!(ast.preds[1].op, CompareOp::Ne);
        assert_eq!(ast.preds[1].lo, -2);
        assert!(ast.group_by.is_some());
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let e = parse("SELECT a FROM t extra").unwrap_err();
        assert!(e.message().contains("expected end of query"), "{e}");
    }

    #[test]
    fn missing_from_points_at_the_culprit() {
        let e = parse("SELECT a WHERE a < 3").unwrap_err();
        assert_eq!(e.col(), 10);
        assert!(e.message().contains("expected FROM"));
    }

    #[test]
    fn parses_multi_row_insert() {
        let StatementAst::Insert(ast) = parse("INSERT INTO t VALUES (1, 2), (-3, 4)").unwrap()
        else {
            panic!("expected INSERT")
        };
        assert_eq!(ast.table, "t");
        assert_eq!(ast.rows.len(), 2);
        assert_eq!(ast.rows[0].0, vec![1, 2]);
        assert_eq!(ast.rows[1].0, vec![-3, 4]);
        // Empty tuples are a parse error, not an arity error.
        let e = parse("INSERT INTO t VALUES ()").unwrap_err();
        assert!(e.message().contains("expected an integer value"), "{e}");
    }

    #[test]
    fn parses_delete_with_and_without_where() {
        let StatementAst::Delete(ast) = parse("DELETE FROM t WHERE a < 3 AND b = 4").unwrap()
        else {
            panic!("expected DELETE")
        };
        assert_eq!(ast.table, "t");
        assert_eq!(ast.preds.len(), 2);
        let StatementAst::Delete(all) = parse("DELETE FROM t").unwrap() else {
            panic!("expected DELETE")
        };
        assert!(all.preds.is_empty());
    }
}
