//! Property: for any spec the dialect can express,
//! `compile(print(spec)) == spec` — the pretty-printer and the
//! parser/lowering pipeline are exact inverses over the catalog.

use matstrat_common::{Predicate, TableId, Value};
use matstrat_core::{AggFunc, JoinSpec, JoinTreeSpec, QuerySpec};
use matstrat_lang::{compile, print_join_tree, print_query, print_statement, Statement};
use matstrat_storage::{EncodingKind, ProjectionSpec, Store};
use proptest::prelude::*;

/// A catalog with one fact projection (5 columns) and three dimension
/// projections. Row contents are irrelevant to compilation; a handful of
/// rows keeps loading instant.
fn fixture() -> (Store, TableId, [TableId; 3]) {
    use matstrat_storage::SortOrder;
    let store = Store::in_memory();
    let rows: Vec<Value> = (0..16).collect();
    let fact = ProjectionSpec::new("fact")
        .column("k1", EncodingKind::Plain, SortOrder::Primary)
        .column("k2", EncodingKind::Plain, SortOrder::None)
        .column("a", EncodingKind::Plain, SortOrder::None)
        .column("b", EncodingKind::Plain, SortOrder::None)
        .column("c", EncodingKind::Plain, SortOrder::None);
    let fact = store
        .load_projection(&fact, &[&rows, &rows, &rows, &rows, &rows])
        .unwrap();
    let mut dims = [TableId(0); 3];
    for (i, (name, cols)) in [("d1", 3usize), ("d2", 3), ("d3", 2)].iter().enumerate() {
        let mut spec =
            ProjectionSpec::new(*name).column("k", EncodingKind::Plain, SortOrder::Primary);
        for c in 1..*cols {
            spec = spec.column(format!("x{c}"), EncodingKind::Plain, SortOrder::None);
        }
        let data: Vec<&[Value]> = (0..*cols).map(|_| rows.as_slice()).collect();
        dims[i] = store.load_projection(&spec, &data).unwrap();
    }
    (store, fact, dims)
}

const FACT_COLS: usize = 5;

/// Build one of the seven predicate shapes from raw draws.
fn predicate(op: usize, v: Value, v2: Value) -> Predicate {
    match op {
        0 => Predicate::lt(v),
        1 => Predicate::le(v),
        2 => Predicate::gt(v),
        3 => Predicate::ge(v),
        4 => Predicate::eq(v),
        5 => Predicate::ne(v),
        _ => Predicate::between(v.min(v2), v.max(v2)),
    }
}

/// Decode a non-empty subset of `n` columns from a bitmask.
fn subset(mask: u32, n: usize) -> Vec<usize> {
    (0..n).filter(|i| mask & (1 << i) != 0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn scan_specs_roundtrip(
        out_mask in 1u32..32,
        nfilters in 0usize..3,
        f1 in (0usize..FACT_COLS, 0usize..7, -99i64..100, -99i64..100),
        f2 in (0usize..FACT_COLS, 0usize..7, -99i64..100, -99i64..100),
        agg in 0usize..5,
        gcol in 0usize..FACT_COLS,
        vcol in 0usize..FACT_COLS,
    ) {
        let (store, fact, _) = fixture();
        let mut q = QuerySpec::select(fact, subset(out_mask, FACT_COLS));
        for (col, op, v, v2) in [f1, f2].into_iter().take(nfilters) {
            q = q.filter(col, predicate(op, v, v2));
        }
        if agg > 0 {
            let func = [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max][agg - 1];
            q.output = Vec::new(); // aggregation replaces the select list
            q = q.aggregate_fn(gcol, vcol, func);
        }

        let text = print_query(&store, &q).unwrap();
        let stmt = compile(&store, &text)
            .unwrap_or_else(|e| panic!("reparse of '{text}' failed:\n{e}"));
        prop_assert_eq!(stmt, Statement::Select(q), "text: {}", text);
    }

    #[test]
    fn join_tree_specs_roundtrip(
        nedges in 1usize..4,
        base_mask in 1u32..4,          // non-empty subset of fact.{a,b}
        right_masks in (0u32..4, 0u32..4, 0u32..2),
        left_slots in (0usize..1, 0usize..2, 0usize..3),
        left_keys in (0usize..FACT_COLS, 0usize..3, 0usize..3),
        filter in 0usize..8,           // 0 = none, else op + 1
        fcol in 0usize..FACT_COLS,
        fval in -99i64..100,
        rfilters in (0usize..8, 0usize..8, 0usize..8),
        rfcols in (0usize..3, 0usize..3, 0usize..2),
        rfval in -99i64..100,
    ) {
        let (store, fact, dims) = fixture();
        let dim_cols = [3usize, 3, 2];
        let right_masks = [right_masks.0, right_masks.1, right_masks.2];
        let left_slots = [left_slots.0, left_slots.1, left_slots.2];
        let left_keys = [left_keys.0, left_keys.1, left_keys.2];
        let rfilters = [rfilters.0, rfilters.1, rfilters.2];
        let rfcols = [rfcols.0, rfcols.1, rfcols.2];

        let mut edges = Vec::new();
        for i in 0..nedges {
            // Slot 0 is the fact table; slot j > 0 is dims[j-1] — only
            // tables already introduced are legal probe sides.
            let slot = left_slots[i].min(i);
            let (left, left_key) = if slot == 0 {
                (fact, left_keys[i].min(FACT_COLS - 1))
            } else {
                (dims[slot - 1], left_keys[i].min(dim_cols[slot - 1] - 1))
            };
            // Dimension predicates ride each edge's right_filter —
            // lowering reassigns them by table name, so any mix prints
            // and reparses exactly.
            let right_filter = (rfilters[i] > 0).then(|| {
                (rfcols[i].min(dim_cols[i] - 1), predicate(rfilters[i] - 1, rfval, rfval + 5))
            });
            edges.push(JoinSpec {
                left,
                right: dims[i],
                left_key,
                right_key: 0,
                left_filter: None,
                right_filter,
                left_output: Vec::new(),
                right_output: subset(right_masks[i], dim_cols[i]),
            });
        }
        edges[0].left_output = subset(base_mask, 2).iter().map(|c| c + 2).collect();
        if filter > 0 {
            edges[0].left_filter = Some((fcol, predicate(filter - 1, fval, fval + 7)));
        }
        let tree = JoinTreeSpec::new(edges);

        let text = print_join_tree(&store, &tree).unwrap();
        let stmt = compile(&store, &text)
            .unwrap_or_else(|e| panic!("reparse of '{text}' failed:\n{e}"));
        prop_assert_eq!(stmt, Statement::JoinTree(tree), "text: {}", text);
    }

    #[test]
    fn aggregated_join_trees_roundtrip(
        nedges in 1usize..4,
        left_keys in (0usize..FACT_COLS, 0usize..3, 0usize..3),
        gslot in 0usize..4,
        gcol in 0usize..5,
        vslot in 0usize..4,
        vcol in 0usize..5,
        func in 0usize..4,
        filter in 0usize..8,
        fcol in 0usize..FACT_COLS,
        fval in -99i64..100,
        rfilter in 0usize..8,
        rslot in 0usize..3,
        rfval in -99i64..100,
    ) {
        let (store, fact, dims) = fixture();
        let dim_cols = [3usize, 3, 2];
        let left_keys = [left_keys.0, left_keys.1, left_keys.2];

        // A star: every edge probes the fact table.
        let mut edges = Vec::new();
        for i in 0..nedges {
            edges.push(JoinSpec {
                left: fact,
                right: dims[i],
                left_key: left_keys[i].min(FACT_COLS - 1),
                right_key: 0,
                left_filter: None,
                right_filter: None,
                left_output: Vec::new(),
                right_output: Vec::new(),
            });
        }
        if filter > 0 {
            edges[0].left_filter = Some((fcol, predicate(filter - 1, fval, fval + 7)));
        }
        if rfilter > 0 {
            let slot = rslot.min(nedges - 1);
            edges[slot].right_filter =
                Some((dim_cols[slot] - 1, predicate(rfilter - 1, rfval, rfval + 5)));
        }

        // Pick group/value columns anywhere in scope, then build the
        // canonical output lists exactly as lowering does: slot-major,
        // group before value within a table.
        let clamp = |slot: usize, col: usize| -> (usize, usize) {
            let slot = slot.min(nedges);
            let ncols = if slot == 0 { FACT_COLS } else { dim_cols[slot - 1] };
            (slot, col % ncols)
        };
        let gpair = clamp(gslot, gcol);
        let vpair = clamp(vslot, vcol);
        let mut pairs = vec![gpair];
        if vpair != gpair {
            pairs.push(vpair);
        }
        pairs.sort_by_key(|&(slot, _)| slot);
        for &(slot, idx) in &pairs {
            if slot == 0 {
                edges[0].left_output.push(idx);
            } else {
                edges[slot - 1].right_output.push(idx);
            }
        }
        let gflat = pairs.iter().position(|&p| p == gpair).unwrap();
        let vflat = pairs.iter().position(|&p| p == vpair).unwrap();
        let funcs = [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max];
        let tree = JoinTreeSpec::new(edges).aggregate_fn(gflat, vflat, funcs[func]);

        let text = print_join_tree(&store, &tree).unwrap();
        let stmt = compile(&store, &text)
            .unwrap_or_else(|e| panic!("reparse of '{text}' failed:\n{e}"));
        prop_assert_eq!(stmt, Statement::JoinTree(tree), "text: {}", text);
    }
}

#[test]
fn statement_printer_dispatches_both_shapes() {
    let (store, fact, dims) = fixture();
    let scan =
        Statement::Select(QuerySpec::select(fact, vec![0, 2]).filter(1, Predicate::between(3, 9)));
    let text = print_statement(&store, &scan).unwrap();
    assert_eq!(text, "SELECT k1, a FROM fact WHERE k2 BETWEEN 3 AND 9");
    assert_eq!(compile(&store, &text).unwrap(), scan);

    let tree = Statement::JoinTree(JoinTreeSpec::new(vec![JoinSpec {
        left: fact,
        right: dims[0],
        left_key: 1,
        right_key: 0,
        left_filter: Some((2, Predicate::ne(-5))),
        right_filter: None,
        left_output: vec![3],
        right_output: vec![1, 2],
    }]));
    let text = print_statement(&store, &tree).unwrap();
    assert_eq!(
        text,
        "SELECT fact.b, d1.x1, d1.x2 FROM fact JOIN d1 ON fact.k2 = d1.k WHERE fact.a != -5"
    );
    assert_eq!(compile(&store, &text).unwrap(), tree);
}

#[test]
fn unprintable_specs_are_rejected_not_mangled() {
    let (store, fact, dims) = fixture();
    let no_output = QuerySpec::select(fact, vec![]);
    assert!(print_query(&store, &no_output).is_err());
    let empty_tree = JoinTreeSpec::new(vec![]);
    assert!(print_join_tree(&store, &empty_tree).is_err());
    let no_cols = JoinTreeSpec::new(vec![JoinSpec {
        left: fact,
        right: dims[0],
        left_key: 0,
        right_key: 0,
        left_filter: None,
        right_filter: None,
        left_output: vec![],
        right_output: vec![],
    }]);
    assert!(print_join_tree(&store, &no_cols).is_err());
}
