//! Error-message snapshots: every rejection carries the exact location
//! and a caret snippet. These strings are the front-end's UI — changes
//! must be deliberate, so each case pins the full `Display` output.

use matstrat_common::Value;
use matstrat_lang::compile;
use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder, Store};

fn fixture() -> Store {
    let store = Store::in_memory();
    let rows: Vec<Value> = (0..16).collect();
    let fact = ProjectionSpec::new("fact")
        .column("k1", EncodingKind::Plain, SortOrder::Primary)
        .column("k2", EncodingKind::Plain, SortOrder::None)
        .column("a", EncodingKind::Plain, SortOrder::None)
        .column("b", EncodingKind::Plain, SortOrder::None)
        .column("c", EncodingKind::Plain, SortOrder::None);
    store
        .load_projection(&fact, &[&rows, &rows, &rows, &rows, &rows])
        .unwrap();
    let d1 = ProjectionSpec::new("d1")
        .column("k", EncodingKind::Plain, SortOrder::Primary)
        .column("x1", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&d1, &[&rows, &rows]).unwrap();
    // d2 shares d1's column names, so bare 'x1' is ambiguous once both
    // are in scope.
    let d2 = ProjectionSpec::new("d2")
        .column("k", EncodingKind::Plain, SortOrder::Primary)
        .column("x1", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&d2, &[&rows, &rows]).unwrap();
    store
}

#[track_caller]
fn snapshot(sql: &str, expected: &str) {
    let store = fixture();
    let err = match compile(&store, sql) {
        Err(e) => e,
        Ok(stmt) => panic!("'{sql}' unexpectedly compiled: {stmt:?}"),
    };
    assert_eq!(
        err.to_string(),
        expected,
        "\n--- query ---\n{sql}\n--- actual ---\n{err}\n"
    );
}

#[test]
fn syntax_errors_point_at_the_offending_token() {
    snapshot(
        "SELECT a WHERE a < 3",
        "line 1, column 10: expected FROM, found WHERE\n\
         \x20 | SELECT a WHERE a < 3\n\
         \x20 |          ^",
    );
    snapshot(
        "SELECT a FROM fact extra",
        "line 1, column 20: expected end of query, found identifier 'extra'\n\
         \x20 | SELECT a FROM fact extra\n\
         \x20 |                    ^",
    );
    snapshot(
        "SELECT SUM(a FROM fact GROUP BY a",
        "line 1, column 14: expected ')', found FROM\n\
         \x20 | SELECT SUM(a FROM fact GROUP BY a\n\
         \x20 |              ^",
    );
    snapshot(
        "SELECT a FROM fact WHERE a BETWEEN 1 5",
        "line 1, column 38: expected AND, found integer 5\n\
         \x20 | SELECT a FROM fact WHERE a BETWEEN 1 5\n\
         \x20 |                                      ^",
    );
    snapshot(
        "SELECT a FROM fact WHERE a ; 3",
        "line 1, column 28: unexpected character ';'\n\
         \x20 | SELECT a FROM fact WHERE a ; 3\n\
         \x20 |                            ^",
    );
}

#[test]
fn name_resolution_errors_cite_the_catalog() {
    snapshot(
        "SELECT a FROM nope",
        "line 1, column 15: unknown projection 'nope'\n\
         \x20 | SELECT a FROM nope\n\
         \x20 |               ^",
    );
    snapshot(
        "SELECT zz FROM fact",
        "line 1, column 8: no column 'zz' in projection 'fact'\n\
         \x20 | SELECT zz FROM fact\n\
         \x20 |        ^",
    );
    snapshot(
        "SELECT d1.x1 FROM fact",
        "line 1, column 8: unknown table 'd1' in this query (FROM fact)\n\
         \x20 | SELECT d1.x1 FROM fact\n\
         \x20 |        ^",
    );
}

#[test]
fn group_by_shape_violations_name_the_rule() {
    snapshot(
        "SELECT SUM(a) FROM fact",
        "line 1, column 8: aggregates require GROUP BY\n\
         \x20 | SELECT SUM(a) FROM fact\n\
         \x20 |        ^",
    );
    snapshot(
        "SELECT a, b, c FROM fact GROUP BY a",
        "line 1, column 26: GROUP BY queries must select exactly the group column \
         and one aggregate\n\
         \x20 | SELECT a, b, c FROM fact GROUP BY a\n\
         \x20 |                          ^",
    );
    snapshot(
        "SELECT b, SUM(c) FROM fact GROUP BY a",
        "line 1, column 8: the first select item must be the GROUP BY column\n\
         \x20 | SELECT b, SUM(c) FROM fact GROUP BY a\n\
         \x20 |        ^",
    );
    snapshot(
        "SELECT a, b FROM fact GROUP BY a",
        "line 1, column 11: the second select item must be an aggregate \
         (SUM/COUNT/MIN/MAX)\n\
         \x20 | SELECT a, b FROM fact GROUP BY a\n\
         \x20 |           ^",
    );
}

#[test]
fn join_dialect_limits_each_carry_their_own_message() {
    snapshot(
        "SELECT fact.a FROM fact JOIN d1 ON d1.k = d1.x1",
        "line 1, column 36: ON must equate a column of 'd1' with a column of an \
         earlier table\n\
         \x20 | SELECT fact.a FROM fact JOIN d1 ON d1.k = d1.x1\n\
         \x20 |                                    ^",
    );
    snapshot(
        "SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k JOIN d1 ON fact.k1 = d1.k",
        "line 1, column 56: table 'd1' appears twice in this query\n\
         \x20 | SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k JOIN d1 ON fact.k1 = d1.k\n\
         \x20 |                                                        ^",
    );
    snapshot(
        "SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k WHERE fact.a < 3 AND fact.b < 4",
        "line 1, column 72: table 'fact' already has a WHERE predicate (join queries \
         take at most one per table)\n\
         \x20 | SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k WHERE fact.a < 3 AND fact.b < 4\n\
         \x20 |                                                                        ^",
    );
    snapshot(
        "SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k WHERE d1.x1 < 3 AND d1.x1 > 0",
        "line 1, column 71: table 'd1' already has a WHERE predicate (join queries \
         take at most one per table)\n\
         \x20 | SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k WHERE d1.x1 < 3 AND d1.x1 > 0\n\
         \x20 |                                                                       ^",
    );
    snapshot(
        "SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k GROUP BY fact.a",
        "line 1, column 51: GROUP BY queries must select exactly the group column \
         and one aggregate\n\
         \x20 | SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k GROUP BY fact.a\n\
         \x20 |                                                   ^",
    );
    snapshot(
        "SELECT d1.x1, fact.a FROM fact JOIN d1 ON fact.k2 = d1.k",
        "line 1, column 15: select columns must appear in join order: base table \
         columns first, then each joined table's columns\n\
         \x20 | SELECT d1.x1, fact.a FROM fact JOIN d1 ON fact.k2 = d1.k\n\
         \x20 |               ^",
    );
}

#[test]
fn bare_columns_resolve_only_when_unambiguous() {
    // 'a' lives only in fact: a bare reference now resolves.
    let store = fixture();
    let stmt = compile(&store, "SELECT a FROM fact JOIN d1 ON fact.k2 = d1.k").unwrap();
    assert!(matches!(stmt, matstrat_lang::Statement::JoinTree(_)));
    // 'x1' lives in d1 and d2: ambiguous, caret on the bare reference.
    snapshot(
        "SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k \
         JOIN d2 ON fact.k1 = d2.k WHERE x1 < 3",
        "line 1, column 83: ambiguous column 'x1': qualify as table.column \
         (found in 'd1' and 'd2')\n\
         \x20 | SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k JOIN d2 ON fact.k1 = d2.k WHERE x1 < 3\n\
         \x20 |                                                                                   ^",
    );
    snapshot(
        "SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k WHERE zz < 3",
        "line 1, column 57: no column 'zz' in any table of this query\n\
         \x20 | SELECT fact.a FROM fact JOIN d1 ON fact.k2 = d1.k WHERE zz < 3\n\
         \x20 |                                                         ^",
    );
}

#[test]
fn multi_byte_input_keeps_caret_columns_in_characters() {
    // 'Σ' and 'π' are two bytes each; columns must count characters,
    // not bytes, or every caret after the first multi-byte character
    // drifts right. The offending character itself must print whole —
    // a byte-oriented lexer reports its mangled first byte instead.
    snapshot(
        "SELECT a FROM fact WHERE a ≤ 3",
        "line 1, column 28: unexpected character '≤'\n\
         \x20 | SELECT a FROM fact WHERE a ≤ 3\n\
         \x20 |                            ^",
    );
    snapshot(
        "SELECT Σum FROM fact WHERE a < 3",
        "line 1, column 8: unexpected character 'Σ'\n\
         \x20 | SELECT Σum FROM fact WHERE a < 3\n\
         \x20 |        ^",
    );
}

#[test]
fn write_statement_errors_point_at_the_culprit() {
    snapshot(
        "INSERT INTO nope VALUES (1)",
        "line 1, column 13: unknown projection 'nope'\n\
         \x20 | INSERT INTO nope VALUES (1)\n\
         \x20 |             ^",
    );
    snapshot(
        "INSERT INTO fact VALUES (1, 2, 3, 4, 5), (6, 7)",
        "line 1, column 42: projection 'fact' has 5 columns, this tuple has 2\n\
         \x20 | INSERT INTO fact VALUES (1, 2, 3, 4, 5), (6, 7)\n\
         \x20 |                                          ^",
    );
    snapshot(
        "DELETE FROM fact WHERE zz < 3",
        "line 1, column 24: no column 'zz' in projection 'fact'\n\
         \x20 | DELETE FROM fact WHERE zz < 3\n\
         \x20 |                        ^",
    );
}

#[test]
fn multi_line_queries_report_the_right_line() {
    let store = fixture();
    let err = compile(&store, "SELECT a\nFROM fact\nWHERE zz < 3").unwrap_err();
    assert_eq!((err.line(), err.col()), (3, 7));
    assert_eq!(
        err.to_string(),
        "line 3, column 7: no column 'zz' in projection 'fact'\n\
         \x20 | WHERE zz < 3\n\
         \x20 |       ^"
    );
}
