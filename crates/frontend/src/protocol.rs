//! The wire grammar: newline-framed text, one statement per request.
//!
//! Requests are single lines of the `matstrat-lang` dialect terminated
//! by `\n` (a trailing `\r` is tolerated for `nc`/telnet clients).
//! Blank and whitespace-only lines are ignored — they produce no
//! response, so a scripted client must not count them. A line longer
//! than [`MAX_LINE`] bytes is a protocol error: the server answers
//! `ERR` and closes the connection.
//!
//! Responses come in exactly two shapes:
//!
//! ```text
//! response := rows | error
//! rows     := "ROWS " ncols "\n"
//!             name ("\t" name)* "\n"          -- header
//!             (int ("\t" int)* "\n")*         -- one line per row, streamed
//!             "OK " rows_out " reads=" block_reads "\n"
//! error    := "ERR " nlines "\n" (line "\n"){nlines}
//! ```
//!
//! Every value is a decimal `i64`; fields are tab-separated. The `OK`
//! trailer carries the two deterministic per-query measurements —
//! `rows_out` and this query's own cold `block_reads` (per-thread
//! harvest, exact under concurrency) — and nothing nondeterministic,
//! so a whole response is byte-comparable across interleavings: that
//! is what `tests/net_diff.rs` pins. Writes answer in the same shape
//! (`rows_affected` header, one row, `reads=0`).
//!
//! An `error` response carries the rendered error verbatim, one wire
//! line per source line — for compile failures that is
//! [`matstrat_lang::ParseError`]'s three-line caret snippet, character
//! columns intact on multi-byte input (`tests/net_protocol.rs` pins
//! the round-trip against the lang crate's snapshots). Errors never
//! close the connection; framing violations do.

use std::io::{self, BufRead, Write};

use matstrat_core::QueryOutcome;

/// Longest accepted request line, in bytes (framing guard, not a SQL
/// limit — the dialect never comes close).
pub const MAX_LINE: usize = 64 * 1024;

/// First token of a row response's status line.
pub const ROWS_PREFIX: &str = "ROWS ";
/// First token of an error response's status line.
pub const ERR_PREFIX: &str = "ERR ";
/// First token of a row response's trailer.
pub const OK_PREFIX: &str = "OK ";

/// Stream one executed statement's response: status line, header,
/// rows, `OK` trailer. `Vec<u8>` is a `Write`r too, so the serial
/// oracle renders reference bytes through this same function.
pub fn write_outcome<W: Write>(w: &mut W, out: &QueryOutcome) -> io::Result<()> {
    let rows = &out.rows;
    writeln!(w, "{}{}", ROWS_PREFIX, rows.width())?;
    writeln!(w, "{}", rows.column_names.join("\t"))?;
    let mut line = String::new();
    for row in rows.rows() {
        line.clear();
        for (i, v) in row.iter().enumerate() {
            if i > 0 {
                line.push('\t');
            }
            line.push_str(itoa(*v).as_str());
        }
        writeln!(w, "{line}")?;
    }
    writeln!(
        w,
        "{}{} reads={}",
        OK_PREFIX,
        out.stats.rows_out,
        out.block_reads()
    )
}

/// Render an error response: `ERR <nlines>` then the message verbatim,
/// one wire line per message line (a trailing newline in `msg` does
/// not produce an empty extra line).
pub fn write_error<W: Write>(w: &mut W, msg: &str) -> io::Result<()> {
    let lines: Vec<&str> = msg.lines().collect();
    writeln!(w, "{}{}", ERR_PREFIX, lines.len().max(1))?;
    if lines.is_empty() {
        writeln!(w, "unknown error")?;
    }
    for l in &lines {
        writeln!(w, "{l}")?;
    }
    Ok(())
}

/// Parse a `ROWS <ncols>` status line.
pub fn parse_rows_status(line: &str) -> Option<usize> {
    line.strip_prefix(ROWS_PREFIX)?.trim().parse().ok()
}

/// Parse an `ERR <nlines>` status line.
pub fn parse_err_status(line: &str) -> Option<usize> {
    line.strip_prefix(ERR_PREFIX)?.trim().parse().ok()
}

/// Parse an `OK <rows_out> reads=<block_reads>` trailer.
pub fn parse_ok_trailer(line: &str) -> Option<(u64, u64)> {
    let rest = line.strip_prefix(OK_PREFIX)?;
    let (rows, reads) = rest.split_once(' ')?;
    let reads = reads.strip_prefix("reads=")?;
    Some((rows.trim().parse().ok()?, reads.trim().parse().ok()?))
}

fn itoa(v: i64) -> String {
    v.to_string()
}

/// One framing read from a connection.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (newline stripped; may still carry a trailing
    /// `\r` — the caller trims).
    Line(Vec<u8>),
    /// Clean end of stream on a line boundary.
    Eof,
    /// The peer vanished mid-line: bytes arrived, then EOF before the
    /// newline. No response is owed for a torn request.
    Torn,
    /// The line outgrew [`MAX_LINE`] before its newline arrived.
    TooLong,
    /// The socket's read timeout fired — an abandoned connection.
    TimedOut,
}

/// Read one newline-framed line, bounded by `max` bytes. Timeouts
/// (`WouldBlock`/`TimedOut`, however the platform spells them) are a
/// [`LineRead::TimedOut`] outcome, not an error; connection resets
/// read as EOF/torn rather than bubbling an `Err`.
pub fn read_line_bounded<R: BufRead>(r: &mut R, max: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(LineRead::TimedOut)
            }
            Err(e)
                if e.kind() == io::ErrorKind::ConnectionReset
                    || e.kind() == io::ErrorKind::ConnectionAborted
                    || e.kind() == io::ErrorKind::BrokenPipe =>
            {
                return Ok(if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Torn
                })
            }
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Torn
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                buf.extend_from_slice(&chunk[..i]);
                r.consume(i + 1);
                if buf.len() > max {
                    return Ok(LineRead::TooLong);
                }
                return Ok(LineRead::Line(buf));
            }
            None => {
                buf.extend_from_slice(chunk);
                let n = chunk.len();
                r.consume(n);
                if buf.len() > max {
                    return Ok(LineRead::TooLong);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matstrat_core::{QueryPlan, QueryResult, QueryStats};

    fn outcome(cols: &[&str], data: Vec<i64>, reads: u64) -> QueryOutcome {
        let rows = QueryResult::from_flat(cols.iter().map(|c| c.to_string()).collect(), data);
        let rows_out = rows.num_rows() as u64;
        let mut stats = QueryStats {
            rows_out,
            ..QueryStats::default()
        };
        stats.io.block_reads = reads;
        QueryOutcome {
            rows,
            stats,
            choice: QueryPlan::Write,
        }
    }

    #[test]
    fn outcome_renders_header_rows_and_trailer() {
        let mut buf = Vec::new();
        write_outcome(&mut buf, &outcome(&["a", "b"], vec![1, 2, -3, 40], 7)).unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "ROWS 2\na\tb\n1\t2\n-3\t40\nOK 2 reads=7\n"
        );
    }

    #[test]
    fn error_renders_each_message_line() {
        let mut buf = Vec::new();
        write_error(&mut buf, "line 1, column 3: nope\n  | ab\n  |   ^").unwrap();
        assert_eq!(
            String::from_utf8(buf).unwrap(),
            "ERR 3\nline 1, column 3: nope\n  | ab\n  |   ^\n"
        );
    }

    #[test]
    fn status_and_trailer_lines_round_trip() {
        assert_eq!(parse_rows_status("ROWS 3"), Some(3));
        assert_eq!(parse_rows_status("ROW 3"), None);
        assert_eq!(parse_err_status("ERR 2"), Some(2));
        assert_eq!(parse_ok_trailer("OK 42 reads=9"), Some((42, 9)));
        assert_eq!(parse_ok_trailer("OK 42"), None);
    }

    #[test]
    fn bounded_reader_frames_eof_torn_and_oversize() {
        let mut r = io::BufReader::new(&b"SELECT 1\npartial"[..]);
        match read_line_bounded(&mut r, 64).unwrap() {
            LineRead::Line(l) => assert_eq!(l, b"SELECT 1"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_line_bounded(&mut r, 64).unwrap(),
            LineRead::Torn
        ));
        let mut r = io::BufReader::new(&b""[..]);
        assert!(matches!(
            read_line_bounded(&mut r, 64).unwrap(),
            LineRead::Eof
        ));
        let long = [b'x'; 100];
        let mut r = io::BufReader::new(&long[..]);
        assert!(matches!(
            read_line_bounded(&mut r, 64).unwrap(),
            LineRead::TooLong
        ));
    }
}
