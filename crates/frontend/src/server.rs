//! The TCP listener: a [`Session`]-per-connection accept loop over the
//! in-process query service.
//!
//! Layering, bottom to top:
//!
//! * [`matstrat_core::Server`] — admission gate + fair worker shares
//!   (unchanged; the wire layer adds **no** execution paths);
//! * one [`Session`] per accepted connection, living as long as the
//!   socket: its statements run under admission exactly like an
//!   in-process caller, so per-query stats and cold `block_reads`
//!   are byte-identical to library use (`tests/net_diff.rs` pins it);
//! * a **connection cap** ([`NetConfig::max_conns`]) layered above the
//!   admission gate: admission bounds *executing* queries, the cap
//!   bounds *open sockets*. An over-cap connection is accepted, told
//!   `ERR ... connection capacity`, and closed — never left hanging in
//!   the backlog.
//!
//! Every connection carries read/write timeouts: a peer that goes
//! silent for [`NetConfig::read_timeout`] is abandoned (its admission
//! slot, if any, was already released — slots live only for the span
//! of one `Session::run`), and a peer that stops draining its socket
//! for [`NetConfig::write_timeout`] is dropped mid-stream.
//!
//! Shutdown is a control channel plus a self-connect wake: the accept
//! loop blocks in `accept()`, so [`NetServer::shutdown`] posts the
//! control message, dials the listener once to wake it, then half-closes
//! every live connection socket — blocked reads return immediately,
//! handlers finish the statement in flight (the response they owe) and
//! exit, and the accept and handler threads are joined before
//! `shutdown` returns.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use matstrat_core::{Server, ServerConfig, Session};
use matstrat_lang::compile;
use matstrat_storage::Store;

use crate::protocol::{self, LineRead, MAX_LINE};

/// Knobs for one [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Open connections allowed at once (clamped to ≥ 1); an over-cap
    /// connection gets an `ERR` response and an immediate close.
    pub max_conns: usize,
    /// How long a connection may sit silent between requests before the
    /// server abandons it.
    pub read_timeout: Duration,
    /// How long one socket write may block before the peer is dropped.
    pub write_timeout: Duration,
    /// Admission knobs for the underlying query service (used by
    /// [`NetServer::bind`]; [`NetServer::serve`] takes the service
    /// ready-made and ignores this field).
    pub service: ServerConfig,
}

impl Default for NetConfig {
    /// 64 sockets over the default 4-slot admission gate, 30-second
    /// timeouts both ways.
    fn default() -> NetConfig {
        NetConfig {
            max_conns: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            service: ServerConfig::default(),
        }
    }
}

/// Cumulative wire-layer counters (the admission-layer twin is
/// [`matstrat_core::ServerStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections the accept loop took off the listener.
    pub accepted: u64,
    /// Connections refused by the connection cap.
    pub refused: u64,
    /// Connections currently open (refused ones never count).
    pub active: usize,
    /// Statements answered (`ROWS` and `ERR` responses alike).
    pub served: u64,
    /// Framing violations: oversized or torn lines, invalid UTF-8.
    pub protocol_errors: u64,
}

enum Control {
    Shutdown,
}

struct Shared {
    service: Arc<Server>,
    cfg: NetConfig,
    shutting_down: AtomicBool,
    accepted: AtomicU64,
    refused: AtomicU64,
    active: AtomicUsize,
    served: AtomicU64,
    protocol_errors: AtomicU64,
    /// Live connection sockets, for the shutdown half-close wake.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running TCP frontend. Dropping it (or calling
/// [`NetServer::shutdown`]) stops the accept loop, wakes and joins
/// every connection thread, and returns only when all of them exited.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    ctrl: mpsc::Sender<Control>,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Serve `store` on `addr` (use port 0 for an ephemeral port; the
    /// bound address is [`NetServer::local_addr`]). The query service
    /// is created from `cfg.service`.
    pub fn bind(addr: impl ToSocketAddrs, store: Store, cfg: NetConfig) -> io::Result<NetServer> {
        NetServer::serve(addr, Server::new(store, cfg.service), cfg)
    }

    /// Serve an existing query service — callers that want to watch
    /// [`matstrat_core::ServerStats`] from outside keep their own
    /// `Arc<Server>` handle.
    pub fn serve(
        addr: impl ToSocketAddrs,
        service: Arc<Server>,
        cfg: NetConfig,
    ) -> io::Result<NetServer> {
        let cfg = NetConfig {
            max_conns: cfg.max_conns.max(1),
            ..cfg
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (ctrl, ctrl_rx) = mpsc::channel();
        let shared = Arc::new(Shared {
            service,
            cfg,
            shutting_down: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("matstrat-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, ctrl_rx))?;
        Ok(NetServer {
            shared,
            addr,
            ctrl,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The query service underneath (admission stats, store).
    pub fn service(&self) -> &Arc<Server> {
        &self.shared.service
    }

    /// Snapshot the wire-layer counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            accepted: self.shared.accepted.load(Ordering::SeqCst),
            refused: self.shared.refused.load(Ordering::SeqCst),
            active: self.shared.active.load(Ordering::SeqCst),
            served: self.shared.served.load(Ordering::SeqCst),
            protocol_errors: self.shared.protocol_errors.load(Ordering::SeqCst),
        }
    }

    /// Graceful stop: no new connections, live handlers finish the
    /// statement in flight and exit, every thread joined.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept_thread.take() else {
            return;
        };
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        let _ = self.ctrl.send(Control::Shutdown);
        // Wake the accept loop out of its blocking accept().
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = accept.join();
        // Half-close every live socket: blocked reads return EOF now
        // instead of at the read timeout.
        for (_, conn) in self.shared.conns.lock().expect("conns poisoned").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let handlers: Vec<JoinHandle<()>> = self
            .shared
            .handlers
            .lock()
            .expect("handlers poisoned")
            .drain(..)
            .collect();
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, ctrl: mpsc::Receiver<Control>) {
    let mut next_id: u64 = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        if shared.shutting_down.load(Ordering::SeqCst)
            || matches!(ctrl.try_recv(), Ok(Control::Shutdown))
        {
            // The stream that woke us (or raced the shutdown) is
            // dropped unanswered; the server is going away.
            break;
        }
        shared.accepted.fetch_add(1, Ordering::SeqCst);
        // The connection cap: admission bounds executing queries; this
        // bounds open sockets. Claim a slot optimistically, hand it
        // back if that overshot the cap.
        if shared.active.fetch_add(1, Ordering::SeqCst) >= shared.cfg.max_conns {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.refused.fetch_add(1, Ordering::SeqCst);
            refuse(&shared, stream);
            continue;
        }
        let id = next_id;
        next_id += 1;
        if let Ok(clone) = stream.try_clone() {
            shared
                .conns
                .lock()
                .expect("conns poisoned")
                .insert(id, clone);
        }
        let conn_shared = Arc::clone(&shared);
        let handler = std::thread::Builder::new()
            .name(format!("matstrat-conn-{id}"))
            .spawn(move || {
                handle_connection(&conn_shared, stream);
                conn_shared
                    .conns
                    .lock()
                    .expect("conns poisoned")
                    .remove(&id);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
            });
        match handler {
            Ok(h) => shared.handlers.lock().expect("handlers poisoned").push(h),
            Err(_) => {
                // Spawn failed: hand the slot back and drop the socket.
                shared.conns.lock().expect("conns poisoned").remove(&id);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Tell an over-cap peer why it is being dropped. Best-effort: the
/// write gets the configured timeout and failures are ignored.
fn refuse(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut w = BufWriter::new(stream);
    let _ = protocol::write_error(
        &mut w,
        &format!(
            "server at connection capacity ({} open)",
            shared.cfg.max_conns
        ),
    );
    let _ = w.flush();
}

/// One connection: a session, a bounded line reader, a response per
/// statement, until EOF / timeout / framing violation / shutdown.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(shared.cfg.read_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.cfg.write_timeout))
            .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let session = shared.service.connect();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let line = match protocol::read_line_bounded(&mut reader, MAX_LINE) {
            Ok(LineRead::Line(l)) => l,
            Ok(LineRead::Eof) => break,
            Ok(LineRead::Torn) => {
                // Bytes then EOF before the newline: no request was
                // framed, so no response is owed.
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                break;
            }
            Ok(LineRead::TooLong) => {
                shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
                let _ = respond_error(
                    shared,
                    &mut writer,
                    &format!("request line exceeds {MAX_LINE} bytes"),
                );
                break;
            }
            Ok(LineRead::TimedOut) => break,
            Err(_) => break,
        };
        let Ok(text) = std::str::from_utf8(&line) else {
            shared.protocol_errors.fetch_add(1, Ordering::SeqCst);
            if respond_error(shared, &mut writer, "request is not valid UTF-8").is_err() {
                break;
            }
            continue;
        };
        let text = text.trim();
        if text.is_empty() {
            continue; // blank lines are ignored, not answered
        }
        if answer(shared, &session, text, &mut writer).is_err() {
            break; // peer stopped reading; drop the connection
        }
    }
    let _ = writer.flush();
}

/// Compile and run one statement, streaming whichever response shape
/// it earns. `Err` means the socket write failed.
fn answer(
    shared: &Shared,
    session: &Session,
    text: &str,
    writer: &mut BufWriter<TcpStream>,
) -> io::Result<()> {
    let store = shared.service.store();
    match compile(store, text) {
        // The caret snippet crosses the wire verbatim (three lines).
        Err(parse_err) => respond_error(shared, writer, &parse_err.to_string()),
        Ok(stmt) => match session.run(&stmt) {
            Err(exec_err) => {
                respond_error(shared, writer, &format!("execution failed: {exec_err}"))
            }
            Ok(outcome) => {
                // Count before the write: a peer that has seen the
                // response must also see it in `NetStats::served`.
                shared.served.fetch_add(1, Ordering::SeqCst);
                protocol::write_outcome(writer, &outcome)?;
                writer.flush()
            }
        },
    }
}

fn respond_error(shared: &Shared, writer: &mut BufWriter<TcpStream>, msg: &str) -> io::Result<()> {
    shared.served.fetch_add(1, Ordering::SeqCst);
    protocol::write_error(writer, msg)?;
    writer.flush()
}
