//! matstrat-net: the TCP network frontend for the query service.
//!
//! PRs 6–9 made the engine a concurrent, admission-controlled library
//! behind `Server`/`Session` and a text dialect; this crate is the wire
//! layer that turns it into a servable *process*. A [`NetServer`]
//! listens on a `std::net` TCP socket and speaks a newline-framed text
//! protocol ([`protocol`]): clients send one statement of the
//! `matstrat-lang` dialect per line, the server compiles it against the
//! shared catalog, runs it through the existing admission gate at the
//! fair worker share, and streams the result back — status line,
//! header, tab-separated rows, and an `OK <rows> reads=<n>` trailer
//! carrying the query's own deterministic measurements. Compile errors
//! answer `ERR` with [`matstrat_lang::ParseError`]'s line/column caret
//! snippet **verbatim**.
//!
//! The house invariant survives the wire: N concurrent socket clients
//! produce responses byte-identical — rows *and* per-query cold
//! `block_reads` — to the same batch run serially in-process
//! (`tests/net_diff.rs`), because this crate adds zero execution paths:
//! every statement takes exactly the `Session::run` path an in-process
//! caller takes.
//!
//! The thin client half lives in `matstrat-client`; the runnable
//! entrypoint is `matstrat serve` (the workspace root binary).

pub mod protocol;
mod server;

pub use server::{NetConfig, NetServer, NetStats};
