//! The write-ahead log: the durability half of the write path.
//!
//! One log file per table, a sequence of **128-byte fixed records**.
//! Every record carries a CRC-32 over its payload, a monotonically
//! increasing sequence number, and the table's **compaction epoch**:
//! replay applies a record only when its epoch matches the catalog's,
//! so a crash *between* a compaction's catalog swap and its log
//! truncation cannot re-apply records that the swap already folded into
//! immutable blocks. A batch of records is appended with **one** write
//! and **one** [`WalStorage::sync`] (group commit) — per-record fsyncs
//! would make small inserts pay the whole durability tax each.
//!
//! Replay is torn-tail tolerant: it walks whole records from the front,
//! stops cleanly at the first record whose CRC or sequence number does
//! not check out (a crash mid-append tears at most the final batch),
//! and reports how many records survived. The storage layer rebuilds
//! the in-memory delta from those records; bytes after the corruption
//! point are unreachable by construction, never reinterpreted.
//!
//! The crate deliberately depends only on `matstrat-common`: it defines
//! its own minimal [`WalStorage`] trait and the storage crate adapts its
//! `Disk` (whose `sync` extension exists for exactly this) to it —
//! keeping `wal` reusable and the crate graph acyclic.

use matstrat_common::{Error, Result, Value};

/// Size of one log record on storage, CRC included.
pub const RECORD_SIZE: usize = 128;

/// Values one insert record can carry — the record's fixed payload
/// budget. Projections wider than this cannot go through the WAL write
/// path (the store rejects them with a clear error).
pub const MAX_VALUES: usize = 12;

/// What the log needs from its backing storage: append-only writes, a
/// whole-file reset (truncation), reads for replay, and a durability
/// barrier. Object-safe so the storage layer can adapt any `Disk`.
pub trait WalStorage: Send + Sync {
    /// Current length in bytes.
    fn len(&self) -> Result<u64>;

    /// `true` when the log holds no bytes.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Append `bytes` at the current end.
    fn append(&self, bytes: &[u8]) -> Result<()>;

    /// Read exactly `buf.len()` bytes at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Truncate to zero length.
    fn reset(&self) -> Result<()>;

    /// Durability barrier: everything appended so far survives a crash.
    fn sync(&self) -> Result<()>;
}

/// One logical operation, as logged and as replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A row inserted into `table` at (position-stamped) `pos`.
    Insert {
        table: u32,
        pos: u64,
        values: Vec<Value>,
    },
    /// The row at `pos` of `table` deleted.
    Delete { table: u32, pos: u64 },
}

impl WalRecord {
    /// The table the record belongs to.
    pub fn table(&self) -> u32 {
        match self {
            WalRecord::Insert { table, .. } | WalRecord::Delete { table, .. } => *table,
        }
    }
}

const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Table-free bitwise
/// form: replay touches a few KB at startup, not a hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Record layout (all little-endian):
///
/// ```text
/// [0..4)    crc32 of bytes [4..128)
/// [4..12)   seqno   (u64, starts at 1, +1 per record)
/// [12..16)  epoch   (u32, the table's compaction epoch)
/// [16..20)  table   (u32)
/// [20]      kind    (1 = insert, 2 = delete)
/// [21]      nvals   (insert: number of values, ≤ MAX_VALUES)
/// [22..24)  zero
/// [24..32)  pos     (u64, position stamp / delete target)
/// [32..128) values  (nvals × i64, zero-padded)
/// ```
fn encode(rec: &WalRecord, seqno: u64, epoch: u32, buf: &mut Vec<u8>) -> Result<()> {
    let start = buf.len();
    buf.resize(start + RECORD_SIZE, 0);
    let b = &mut buf[start..start + RECORD_SIZE];
    b[4..12].copy_from_slice(&seqno.to_le_bytes());
    b[12..16].copy_from_slice(&epoch.to_le_bytes());
    match rec {
        WalRecord::Insert { table, pos, values } => {
            if values.len() > MAX_VALUES {
                return Err(Error::invalid(format!(
                    "WAL insert of {} values exceeds the {MAX_VALUES}-value record budget",
                    values.len()
                )));
            }
            b[16..20].copy_from_slice(&table.to_le_bytes());
            b[20] = KIND_INSERT;
            b[21] = values.len() as u8;
            b[24..32].copy_from_slice(&pos.to_le_bytes());
            for (i, v) in values.iter().enumerate() {
                b[32 + i * 8..40 + i * 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        WalRecord::Delete { table, pos } => {
            b[16..20].copy_from_slice(&table.to_le_bytes());
            b[20] = KIND_DELETE;
            b[24..32].copy_from_slice(&pos.to_le_bytes());
        }
    }
    let crc = crc32(&b[4..]);
    b[0..4].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

/// Parse one record. `None` when the CRC fails or the record is
/// malformed — the torn-tail signal, never an error.
fn decode(b: &[u8; RECORD_SIZE]) -> Option<(u64, u32, WalRecord)> {
    let stored = u32::from_le_bytes(b[0..4].try_into().ok()?);
    if crc32(&b[4..]) != stored {
        return None;
    }
    let seqno = u64::from_le_bytes(b[4..12].try_into().ok()?);
    let epoch = u32::from_le_bytes(b[12..16].try_into().ok()?);
    let table = u32::from_le_bytes(b[16..20].try_into().ok()?);
    let pos = u64::from_le_bytes(b[24..32].try_into().ok()?);
    let rec = match b[20] {
        KIND_INSERT => {
            let nvals = b[21] as usize;
            if nvals > MAX_VALUES {
                return None;
            }
            let values = (0..nvals)
                .map(|i| Value::from_le_bytes(b[32 + i * 8..40 + i * 8].try_into().unwrap()))
                .collect();
            WalRecord::Insert { table, pos, values }
        }
        KIND_DELETE => WalRecord::Delete { table, pos },
        _ => return None,
    };
    Some((seqno, epoch, rec))
}

/// What replay found in a log file.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Records that passed CRC + sequence checks *and* matched
    /// `live_epoch`, in log order — the delta to rebuild.
    pub records: Vec<WalRecord>,
    /// Whole records recovered (including stale-epoch ones skipped).
    pub recovered: u64,
    /// `true` when replay stopped before the end of the file — a torn
    /// or corrupt tail was detected and everything after it ignored.
    pub torn: bool,
    /// The highest sequence number seen (0 for an empty log).
    pub last_seqno: u64,
}

/// An open write-ahead log for one table.
pub struct Wal {
    storage: Box<dyn WalStorage>,
    next_seqno: u64,
    epoch: u32,
}

impl Wal {
    /// Open the log, replaying whatever it holds. Records whose epoch
    /// differs from `live_epoch` are counted but not returned: they
    /// predate the table's last compaction and are already folded into
    /// its immutable blocks.
    pub fn open(storage: Box<dyn WalStorage>, live_epoch: u32) -> Result<(Wal, Recovery)> {
        let len = storage.len()?;
        let whole = len / RECORD_SIZE as u64;
        let mut rec_buf = [0u8; RECORD_SIZE];
        let mut recovery = Recovery {
            // A trailing partial record is itself a torn tail.
            torn: len % RECORD_SIZE as u64 != 0,
            ..Recovery::default()
        };
        let mut expect_seqno = 1u64;
        for i in 0..whole {
            storage.read_at(i * RECORD_SIZE as u64, &mut rec_buf)?;
            match decode(&rec_buf) {
                Some((seqno, epoch, rec)) if seqno == expect_seqno => {
                    expect_seqno += 1;
                    recovery.recovered += 1;
                    recovery.last_seqno = seqno;
                    if epoch == live_epoch {
                        recovery.records.push(rec);
                    }
                }
                // CRC failure, malformed kind, or a sequence break:
                // stop cleanly; everything after is unreachable.
                _ => {
                    recovery.torn = true;
                    break;
                }
            }
        }
        let wal = Wal {
            storage,
            next_seqno: expect_seqno,
            epoch: live_epoch,
        };
        Ok((wal, recovery))
    }

    /// The epoch stamped on appended records.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Append `records` as one group commit: one write, one sync.
    /// Durable when this returns.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::with_capacity(records.len() * RECORD_SIZE);
        for rec in records {
            encode(rec, self.next_seqno, self.epoch, &mut buf)?;
            self.next_seqno += 1;
        }
        self.storage.append(&buf)?;
        self.storage.sync()
    }

    /// Truncate the log and bump to `epoch` (post-compaction): the
    /// table's delta is now empty and every previous record obsolete.
    /// Safe against a crash at any point *before* this call thanks to
    /// the epoch check — the caller persists the new epoch in the
    /// catalog first, so old records replay as stale even if the
    /// truncation itself never happens.
    pub fn truncate_to_epoch(&mut self, epoch: u32) -> Result<()> {
        self.storage.reset()?;
        self.storage.sync()?;
        self.epoch = epoch;
        self.next_seqno = 1;
        Ok(())
    }
}

/// An in-memory [`WalStorage`] for tests and transient stores.
#[derive(Default)]
pub struct MemWal(std::sync::Mutex<Vec<u8>>);

impl MemWal {
    /// An empty in-memory log.
    pub fn new() -> MemWal {
        MemWal::default()
    }
}

impl WalStorage for MemWal {
    fn len(&self) -> Result<u64> {
        Ok(self.0.lock().unwrap().len() as u64)
    }

    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.0.lock().unwrap().extend_from_slice(bytes);
        Ok(())
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let data = self.0.lock().unwrap();
        let start = offset as usize;
        let end = start + buf.len();
        if end > data.len() {
            return Err(Error::corrupt("short WAL read"));
        }
        buf.copy_from_slice(&data[start..end]);
        Ok(())
    }

    fn reset(&self) -> Result<()> {
        self.0.lock().unwrap().clear();
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A `WalStorage` that shares bytes with an outer handle, so tests
    /// can tamper between a "crash" (drop) and a reopen.
    #[derive(Clone, Default)]
    struct SharedWal(Arc<MemWal>);

    impl WalStorage for SharedWal {
        fn len(&self) -> Result<u64> {
            self.0.len()
        }
        fn append(&self, bytes: &[u8]) -> Result<()> {
            self.0.append(bytes)
        }
        fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
            self.0.read_at(offset, buf)
        }
        fn reset(&self) -> Result<()> {
            self.0.reset()
        }
        fn sync(&self) -> Result<()> {
            self.0.sync()
        }
    }

    impl SharedWal {
        fn bytes(&self) -> Vec<u8> {
            let mut v = vec![0u8; self.0.len().unwrap() as usize];
            self.0.read_at(0, &mut v).unwrap();
            v
        }

        fn overwrite(&self, bytes: &[u8]) {
            self.0.reset().unwrap();
            self.0.append(bytes).unwrap();
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                table: 0,
                pos: 100,
                values: vec![1, -2, 3],
            },
            WalRecord::Insert {
                table: 0,
                pos: 101,
                values: vec![4, 5, 6],
            },
            WalRecord::Delete { table: 0, pos: 7 },
        ]
    }

    #[test]
    fn roundtrip_replays_in_order() {
        let shared = SharedWal::default();
        let (mut wal, rec) = Wal::open(Box::new(shared.clone()), 0).unwrap();
        assert_eq!(rec, Recovery::default());
        wal.append_batch(&sample_records()).unwrap();
        wal.append_batch(&[WalRecord::Delete { table: 0, pos: 8 }])
            .unwrap();
        drop(wal);
        let (_, rec) = Wal::open(Box::new(shared), 0).unwrap();
        assert_eq!(rec.recovered, 4);
        assert!(!rec.torn);
        assert_eq!(rec.last_seqno, 4);
        assert_eq!(rec.records[..3], sample_records());
        assert_eq!(rec.records[3], WalRecord::Delete { table: 0, pos: 8 });
    }

    #[test]
    fn truncated_tail_stops_cleanly() {
        let shared = SharedWal::default();
        let (mut wal, _) = Wal::open(Box::new(shared.clone()), 0).unwrap();
        wal.append_batch(&sample_records()).unwrap();
        drop(wal);
        // Tear mid-record: two whole records survive, the partial third
        // is reported torn, never reinterpreted.
        let bytes = shared.bytes();
        shared.overwrite(&bytes[..2 * RECORD_SIZE + 17]);
        let (_, rec) = Wal::open(Box::new(shared), 0).unwrap();
        assert_eq!(rec.recovered, 2);
        assert!(rec.torn);
        assert_eq!(rec.records, sample_records()[..2].to_vec());
    }

    #[test]
    fn bitflip_in_last_record_is_caught_by_crc() {
        let shared = SharedWal::default();
        let (mut wal, _) = Wal::open(Box::new(shared.clone()), 0).unwrap();
        wal.append_batch(&sample_records()).unwrap();
        drop(wal);
        let mut bytes = shared.bytes();
        let n = bytes.len();
        bytes[n - 40] ^= 0x10; // flip one bit in the last record's payload
        shared.overwrite(&bytes);
        let (_, rec) = Wal::open(Box::new(shared), 0).unwrap();
        assert_eq!(rec.recovered, 2);
        assert!(rec.torn);
        assert_eq!(rec.records, sample_records()[..2].to_vec());
    }

    #[test]
    fn stale_epoch_records_are_counted_but_not_applied() {
        let shared = SharedWal::default();
        let (mut wal, _) = Wal::open(Box::new(shared.clone()), 0).unwrap();
        wal.append_batch(&sample_records()).unwrap();
        drop(wal);
        // The catalog advanced to epoch 1 (compaction swapped) but the
        // crash hit before the log truncation: records must be skipped.
        let (_, rec) = Wal::open(Box::new(shared), 1).unwrap();
        assert_eq!(rec.recovered, 3, "records still parse");
        assert!(rec.records.is_empty(), "but none are live");
        assert!(!rec.torn);
    }

    #[test]
    fn truncate_bumps_epoch_and_restarts_seqnos() {
        let shared = SharedWal::default();
        let (mut wal, _) = Wal::open(Box::new(shared.clone()), 0).unwrap();
        wal.append_batch(&sample_records()).unwrap();
        wal.truncate_to_epoch(1).unwrap();
        assert_eq!(wal.epoch(), 1);
        wal.append_batch(&[WalRecord::Delete { table: 0, pos: 9 }])
            .unwrap();
        drop(wal);
        let (_, rec) = Wal::open(Box::new(shared), 1).unwrap();
        assert_eq!(rec.recovered, 1);
        assert_eq!(rec.last_seqno, 1, "sequence restarted");
        assert_eq!(rec.records, vec![WalRecord::Delete { table: 0, pos: 9 }]);
    }

    #[test]
    fn sequence_break_reads_as_torn() {
        // Concatenating two logs (a stale tail scenario) breaks the
        // seqno chain; replay must stop at the break.
        let shared = SharedWal::default();
        let (mut wal, _) = Wal::open(Box::new(shared.clone()), 0).unwrap();
        wal.append_batch(&sample_records()).unwrap();
        drop(wal);
        let mut bytes = shared.bytes();
        let copy = bytes.clone();
        bytes.extend_from_slice(&copy); // seqnos 1,2,3,1,2,3
        shared.overwrite(&bytes);
        let (_, rec) = Wal::open(Box::new(shared), 0).unwrap();
        assert_eq!(rec.recovered, 3);
        assert!(rec.torn);
    }

    #[test]
    fn oversized_insert_is_rejected() {
        let (mut wal, _) = Wal::open(Box::new(MemWal::new()), 0).unwrap();
        let err = wal
            .append_batch(&[WalRecord::Insert {
                table: 0,
                pos: 0,
                values: vec![0; MAX_VALUES + 1],
            }])
            .unwrap_err();
        assert!(err.to_string().contains("record budget"), "{err}");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
