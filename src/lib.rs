//! # matstrat — Materialization Strategies in a Column-Oriented DBMS
//!
//! A from-scratch Rust reproduction of *Abadi, Myers, DeWitt, Madden:
//! "Materialization Strategies in a Column-Oriented DBMS"* (ICDE 2007).
//!
//! A column store keeps every attribute in its own file; to answer queries
//! through a row-oriented interface it must *materialize* tuples by
//! stitching columns back together. This crate implements and evaluates
//! the paper's four strategies for deciding **when** to stitch:
//!
//! * **EM-pipelined** — build tuples incrementally, one column at a time;
//! * **EM-parallel** — build full tuples at the leaves (SPC operator);
//! * **LM-pipelined** — operate on positions, fetching each next column
//!   only at positions that survived earlier predicates;
//! * **LM-parallel** — filter all columns to position lists, intersect
//!   with word-wise ANDs, then fetch values and merge.
//!
//! This umbrella crate re-exports the full public API of the workspace:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | [`common`] | `matstrat-common` | values, positions, SARG predicates |
//! | [`poslist`] | `matstrat-poslist` | range/bitmap/explicit position lists |
//! | [`storage`] | `matstrat-storage` | 64 KB blocks, codecs, buffer pool, catalog |
//! | [`model`] | `matstrat-model` | the §3 analytical cost model |
//! | [`core`] | `matstrat-core` | multi-columns, operators, strategies, planner, query service |
//! | [`lang`] | `matstrat-lang` | the SQL-dialect front-end (parse, lower, pretty-print) |
//! | [`net`] | `matstrat-net` | TCP wire frontend (newline-framed protocol, `matstrat serve`) |
//! | [`client`] | `matstrat-client` | thin protocol client for tests/benches/tools |
//! | [`tpch`] | `matstrat-tpch` | TPC-H-style workload generator |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use matstrat::prelude::*;
//!
//! // An in-memory database with one two-column projection.
//! let db = Database::in_memory();
//! let spec = ProjectionSpec::new("demo")
//!     .column("a", EncodingKind::Rle, SortOrder::Primary)
//!     .column("b", EncodingKind::Plain, SortOrder::None);
//! let a: Vec<i64> = (0..1000).map(|i| i / 100).collect();
//! let b: Vec<i64> = (0..1000).map(|i| i % 7).collect();
//! let table = db.load_projection(&spec, &[&a, &b]).unwrap();
//!
//! // SELECT a, b FROM demo WHERE a < 5 AND b < 3 — planned and run
//! // through the unified entry point.
//! let query = QuerySpec::select(table, vec![0, 1])
//!     .filter(0, Predicate::lt(5))
//!     .filter(1, Predicate::lt(3));
//! let out = db.execute(&Statement::Select(query)).unwrap();
//! assert_eq!(out.rows.num_rows(), 216);
//! println!("{}", out.choice.describe()); // which strategy the planner chose
//! ```

pub use matstrat_client as client;
pub use matstrat_common as common;
pub use matstrat_core as core;
pub use matstrat_lang as lang;
pub use matstrat_model as model;
pub use matstrat_net as net;
pub use matstrat_poslist as poslist;
pub use matstrat_storage as storage;
pub use matstrat_tpch as tpch;

/// One-line import for applications: `use matstrat::prelude::*;`.
pub mod prelude {
    pub use matstrat_client::{Client, Response, Rows, WireError};
    pub use matstrat_common::{CompareOp, Error, Pos, PosRange, Predicate, Result, Value};
    pub use matstrat_core::{
        default_parallelism, AggSpec, Database, ExecOptions, ExecStats, FragmentPipeline,
        InnerStrategy, JoinSpec, JoinTreePlan, JoinTreeSpec, JoinTreeStats, MiniColumn,
        MultiColumn, QueryOutcome, QueryPlan, QueryResult, QuerySpec, QueryStats, Reply, Request,
        Server, ServerConfig, ServerStats, Session, Statement, Strategy,
    };
    pub use matstrat_lang::{compile, print_statement, ParseError};
    pub use matstrat_model::{Constants, CostModel};
    pub use matstrat_net::{NetConfig, NetServer, NetStats};
    pub use matstrat_poslist::{PosList, Repr};
    pub use matstrat_storage::{EncodingKind, ProjectionSpec, SortOrder};
    pub use matstrat_tpch::{JoinTables, LineitemGen, TpchConfig};
}
