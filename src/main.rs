//! The `matstrat` binary: `matstrat serve` boots the TCP frontend over
//! a persistent or demo store.
//!
//! ```text
//! matstrat serve [--addr HOST:PORT] [--data DIR | --demo]
//!                [--max-conns N] [--max-concurrent N] [--workers N]
//!                [--read-timeout-ms N] [--write-timeout-ms N]
//!                [--self-check]
//! ```
//!
//! `--addr 127.0.0.1:0` binds an ephemeral port; the bound address is
//! printed as `listening on <addr>` before the server starts taking
//! connections, so scripts can scrape it. `--self-check` (CI's smoke
//! mode) boots the listener, drives a loopback client through a scan,
//! a write round-trip, and a caret-diagnosed parse error, then shuts
//! down and exits 0 — proving the whole stack (bind, accept, compile,
//! admission, streaming, shutdown) in one process.

use std::process::ExitCode;
use std::time::Duration;

use matstrat::client::{Client, Response};
use matstrat::net::{NetConfig, NetServer};
use matstrat::prelude::{EncodingKind, ProjectionSpec, SortOrder, Value};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("matstrat: unknown command '{other}'\n");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: matstrat serve [--addr HOST:PORT] [--data DIR | --demo]\n\
         \x20                     [--max-conns N] [--max-concurrent N] [--workers N]\n\
         \x20                     [--read-timeout-ms N] [--write-timeout-ms N] [--self-check]\n\
         \n\
         Speak the newline-framed text protocol to it, e.g.:\n\
         \x20   echo 'SELECT k, v FROM demo WHERE v < 3' | nc 127.0.0.1 7878"
    );
}

struct ServeArgs {
    addr: String,
    data: Option<String>,
    demo: bool,
    self_check: bool,
    cfg: NetConfig,
}

fn parse_args(args: &[String]) -> Result<ServeArgs, String> {
    let mut out = ServeArgs {
        addr: "127.0.0.1:7878".into(),
        data: None,
        demo: false,
        self_check: false,
        cfg: NetConfig::default(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => out.addr = value("--addr")?.clone(),
            "--data" => out.data = Some(value("--data")?.clone()),
            "--demo" => out.demo = true,
            "--self-check" => out.self_check = true,
            "--max-conns" => out.cfg.max_conns = parse_num(value("--max-conns")?)?,
            "--max-concurrent" => {
                out.cfg.service.max_concurrent = parse_num(value("--max-concurrent")?)?
            }
            "--workers" => out.cfg.service.worker_budget = parse_num(value("--workers")?)?,
            "--read-timeout-ms" => {
                out.cfg.read_timeout =
                    Duration::from_millis(parse_num(value("--read-timeout-ms")?)?)
            }
            "--write-timeout-ms" => {
                out.cfg.write_timeout =
                    Duration::from_millis(parse_num(value("--write-timeout-ms")?)?)
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number '{s}'"))
}

/// A small servable dataset: `demo` (k sorted, v, g) and `dim` keyed
/// by `demo.g`.
fn demo_store() -> matstrat::storage::Store {
    let store = matstrat::storage::Store::in_memory();
    let n = 10_000i64;
    let k: Vec<Value> = (0..n).collect();
    let v: Vec<Value> = (0..n).map(|i| (i * 7919) % 101).collect();
    let g: Vec<Value> = (0..n).map(|i| i % 64).collect();
    let spec = ProjectionSpec::new("demo")
        .column("k", EncodingKind::Plain, SortOrder::Primary)
        .column("v", EncodingKind::Plain, SortOrder::None)
        .column("g", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&spec, &[&k, &v, &g]).unwrap();
    let dk: Vec<Value> = (0..64).collect();
    let x: Vec<Value> = (0..64).map(|i| i * 10).collect();
    let spec = ProjectionSpec::new("dim")
        .column("dk", EncodingKind::Plain, SortOrder::Primary)
        .column("x", EncodingKind::Plain, SortOrder::None);
    store.load_projection(&spec, &[&dk, &x]).unwrap();
    store
}

fn serve(args: &[String]) -> ExitCode {
    let args = match parse_args(args) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("matstrat serve: {e}\n");
            usage();
            return ExitCode::FAILURE;
        }
    };
    let store = match (&args.data, args.demo) {
        (Some(_), true) => {
            eprintln!("matstrat serve: --data and --demo are mutually exclusive");
            return ExitCode::FAILURE;
        }
        (Some(dir), false) => match matstrat::storage::Store::open_dir(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("matstrat serve: cannot open store at {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        (None, _) => demo_store(),
    };
    let server = match NetServer::bind(args.addr.as_str(), store, args.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("matstrat serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let addr = server.local_addr();
    println!(
        "matstrat serve: listening on {addr} (max_conns={}, max_concurrent={}, workers={})",
        args.cfg.max_conns, args.cfg.service.max_concurrent, args.cfg.service.worker_budget
    );
    if args.self_check {
        return match self_check(&server) {
            Ok(()) => {
                server.shutdown();
                println!("matstrat serve: self-check ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("matstrat serve: self-check FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    // Serve until the process is killed; the accept loop owns the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Drive the server through its own socket: scan, write round-trip,
/// caret diagnostics. Any drift is a one-line error.
fn self_check(server: &NetServer) -> Result<(), String> {
    let addr = server.local_addr();
    let mut client = Client::connect(addr).map_err(|e| format!("loopback connect failed: {e}"))?;
    let sql = "SELECT g, SUM(v) FROM demo WHERE v < 50 GROUP BY g";
    let rows = match client.query(sql).map_err(|e| e.to_string())? {
        Response::Rows(r) => r,
        Response::Err(e) => return Err(format!("scan rejected:\n{}", e.message)),
    };
    if rows.columns != ["g", "sum_v"] || rows.num_rows() != 64 {
        return Err(format!(
            "scan answered {} rows over {:?}, expected 64 over [g, sum_v]",
            rows.num_rows(),
            rows.columns
        ));
    }
    let wrote = client
        .query("INSERT INTO demo VALUES (10000, 1, 2), (10001, 3, 4)")
        .map_err(|e| e.to_string())?
        .expect_rows("insert");
    if wrote.rows_out != 2 {
        return Err(format!(
            "insert affected {} rows, expected 2",
            wrote.rows_out
        ));
    }
    let gone = client
        .query("DELETE FROM demo WHERE k >= 10000")
        .map_err(|e| e.to_string())?
        .expect_rows("delete");
    if gone.rows_out != 2 {
        return Err(format!(
            "delete affected {} rows, expected 2",
            gone.rows_out
        ));
    }
    match client
        .query("SELECT nope FROM demo")
        .map_err(|e| e.to_string())?
    {
        Response::Err(e) if e.message.contains('^') && e.message.contains("column") => Ok(()),
        Response::Err(e) => Err(format!("diagnostic lost its caret:\n{}", e.message)),
        Response::Rows(_) => Err("bad query unexpectedly executed".into()),
    }
}
