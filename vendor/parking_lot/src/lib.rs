//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the handful of external dependencies it uses as minimal API-compatible
//! implementations. This one wraps `std::sync` primitives behind
//! `parking_lot`'s poison-free interface: `lock()`, `read()` and `write()`
//! return guards directly instead of `Result`s.
//!
//! A poisoned std lock means a panic happened while the lock was held; the
//! process is already failing, so propagating the panic here matches
//! `parking_lot`'s semantics closely enough for this workspace.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free wrapper over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free wrapper over [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a reader-writer lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
