//! Sampling strategies: uniform choice from a fixed set of values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing uniformly among a cloned list of values.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

/// Uniform choice from `values` (cloned, so any borrow lifetime works).
pub fn select<T: Clone>(values: &[T]) -> Select<T> {
    assert!(!values.is_empty(), "select over an empty slice");
    Select {
        values: values.to_vec(),
    }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.below(self.values.len() as u64) as usize].clone()
    }
}
