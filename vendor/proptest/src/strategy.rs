//! The [`Strategy`] trait and its core implementations.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Upstream proptest strategies produce shrinkable value *trees*; this shim
/// generates plain values — same generation semantics, no shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// References to strategies are strategies (generation needs only `&self`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A / 0);
impl_strategy_for_tuple!(A / 0, B / 1);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
