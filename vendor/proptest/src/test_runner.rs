//! Deterministic RNG and configuration for the proptest shim.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Marker returned by `prop_assume!` to skip a case.
#[derive(Debug, Clone, Copy)]
pub struct Rejected;

/// Subset of upstream `ProptestConfig` the shim honours.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Deterministic per-case RNG (the vendored `rand` generator, seeded from
/// the fully qualified test name and the case index), so a failing case
/// reproduces on every run without a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for one case of one named property.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = h ^ ((case as u64) << 32) ^ case as u64;
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
