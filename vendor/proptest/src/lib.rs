//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! its few external dependencies as minimal API-compatible implementations.
//! This one covers the subset the matstrat property suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges and tuples,
//! * [`collection::vec`] / [`collection::btree_set`],
//! * [`sample::select`] and [`bool::ANY`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Semantics differ from upstream in one honest way: **there is no
//! shrinking**. A failing case panics immediately with the values baked
//! into the assertion message and a deterministic per-case seed, so
//! failures still reproduce run-to-run. Case counts follow
//! `ProptestConfig::cases` exactly, and `prop_assume!` rejections skip the
//! case without counting it as a pass.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Strategies over `bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The uniform strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Everything a property-test module needs, one glob away.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to the strategy modules (`prop::collection::vec`,
    /// `prop::sample::select`, ...), as in upstream proptest's prelude.
    pub mod prop {
        pub use crate::{bool, collection, sample, strategy};
    }
}

/// Assert inside a property; failure reports the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Reject the current case (skip it) when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::Config = $cfg;
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(16).max(1024) {
                    panic!(
                        "proptest '{}': too many prop_assume! rejections \
                         ({} attempts for {} accepted cases)",
                        stringify!($name), attempts, accepted
                    );
                }
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempts,
                );
                $(let $arg = ($strat).generate(&mut rng);)+
                // The closure gives `prop_assume!` an early-return target.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (|| { { $body } ::std::result::Result::Ok(()) })();
                if outcome.is_ok() {
                    accepted += 1;
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0i64..10, y in 5u64..6) {
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(y, 5);
        }

        #[test]
        fn tuples_and_maps_compose(v in (0i64..4, 1usize..3).prop_map(|(a, n)| vec![a; n])) {
            prop_assert!(!v.is_empty() && v.len() < 3);
        }

        #[test]
        fn assume_skips_cases(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_honoured(_x in 0i64..3) {
            // Body runs; count is checked implicitly by termination.
        }
    }

    #[test]
    fn collections_and_select() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_case("unit", 1);
        let v = crate::collection::vec(0i64..5, 2..9).generate(&mut rng);
        assert!((2..9).contains(&v.len()));
        let s = crate::collection::btree_set(0u64..100, 0..16).generate(&mut rng);
        assert!(s.len() < 16);
        let pick = crate::sample::select(&[10, 20, 30][..]).generate(&mut rng);
        assert!([10, 20, 30].contains(&pick));
        let flips: Vec<bool> = (0..64)
            .map(|_| crate::bool::ANY.generate(&mut rng))
            .collect();
        assert!(flips.contains(&true) && flips.contains(&false));
    }
}
