//! Offline shim for the `rand` crate (0.8-style API).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! its few external dependencies. This shim provides the subset the
//! `matstrat-tpch` generators use: a seedable deterministic RNG
//! ([`rngs::StdRng`]), [`Rng::gen_range`] over half-open and inclusive
//! integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256** seeded through splitmix64 — statistically
//! strong enough for workload synthesis, and fully deterministic for a
//! given seed (the property the TPC-H generator tests actually assert).
//! It is **not** the same stream as upstream `StdRng`; data generated here
//! is only reproducible against this shim.

use std::ops::{Bound, RangeBounds};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                // Rejection-free mapping: multiply-shift would need u256 for
                // 64-bit spans; modulo bias over a 2^64 stream is < span/2^64,
                // far below anything the workload tests can observe.
                let r = rng.next_u64() as u128 % span as u128;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// No float impls on purpose: exclusive float bounds cannot go through the
// integer step_up/step_down normalisation, and a shim that silently
// returned `hi` from `lo..hi` would diverge from the API it mimics. A
// future float caller gets a compile error and extends this deliberately.

/// One step past `b`, for converting exclusive upper bounds.
fn dec_bound<T: SampleUniform>(b: Bound<&T>, dec: impl Fn(T) -> T) -> Option<T> {
    match b {
        Bound::Included(&x) => Some(x),
        Bound::Excluded(&x) => Some(dec(x)),
        Bound::Unbounded => None,
    }
}

/// User-facing random-value methods, `rand 0.8` style.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform + PartialOrd + RangeStep,
        B: RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => x.step_up(),
            Bound::Unbounded => panic!("gen_range requires a lower bound"),
        };
        let hi = dec_bound(range.end_bound(), |x| x.step_down())
            .expect("gen_range requires an upper bound");
        T::sample_inclusive(self, lo, hi)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Unit increment/decrement used to normalise range bounds.
pub trait RangeStep {
    /// Successor value.
    fn step_up(self) -> Self;
    /// Predecessor value.
    fn step_down(self) -> Self;
}

macro_rules! impl_range_step_int {
    ($($t:ty),*) => {$(
        impl RangeStep for $t {
            fn step_up(self) -> Self { self + 1 }
            fn step_down(self) -> Self { self - 1 }
        }
    )*};
}

impl_range_step_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed; identical seeds give identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand`'s
    /// `StdRng`; the stream differs from upstream, determinism does not).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y: i64 = r.gen_range(1i64..=121);
            assert!((1..=121).contains(&y));
            let z: usize = r.gen_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = StdRng::seed_from_u64(9);
        let heads = (0..100_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((45_000..55_000).contains(&heads), "{heads}");
    }

    #[test]
    fn uniformity_is_coarse_but_real() {
        let mut r = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}
