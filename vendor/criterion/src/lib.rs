//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! its few external dependencies. This shim keeps the bench sources
//! compiling and producing *useful* numbers: each benchmark runs for the
//! configured warm-up and measurement budget and reports the median and
//! spread of its per-iteration wall time as plain text. There are no
//! statistical regressions, plots, or baselines — run the real criterion
//! for those; run this to compare strategies on one machine in one sitting.
//!
//! Two extras support the CI perf trajectory:
//!
//! * **`--quick`** (after `cargo bench ... --`) shrinks every
//!   benchmark's budget to a smoke-test size — upstream criterion's
//!   quick mode — so a full bench binary finishes in seconds. The
//!   numbers are noisier; they seed a trajectory, they do not settle
//!   arguments.
//! * **`BENCH_JSON=<path>`** writes the collected `(id, median, low,
//!   high)` tuples as a small JSON document when the binary exits, for
//!   CI to upload as an artifact and later jobs to diff.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimiser from deleting the work.
pub use std::hint::black_box;

/// Top-level harness handle, one per bench binary.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Untimed warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n# group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let id = id.into();
        run_one(self, &id, f);
        self
    }
}

/// A named collection of benchmarks sharing the group's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &full, f);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.criterion, &full, |b| f(b, input));
        self
    }

    /// End the group (upstream finalises reports here; the shim only
    /// keeps the call site compiling).
    pub fn finish(self) {}
}

/// Identifier of one parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id distinguished by parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `routine`, once per iteration, for the configured budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also calibrates how many iterations fit one sample.
        let warm_start = Instant::now();
        let mut iters_per_sample = 0u64;
        loop {
            black_box(routine());
            iters_per_sample += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_per_sample as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters as u32);
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// One finished benchmark, kept for the optional JSON report.
struct Recorded {
    id: String,
    median_ns: f64,
    low_ns: f64,
    high_ns: f64,
}

static RESULTS: Mutex<Vec<Recorded>> = Mutex::new(Vec::new());

/// Whether `--quick` was passed to the bench binary (cached; cargo
/// forwards everything after `--` to the binary).
fn quick_mode() -> bool {
    static QUICK: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *QUICK.get_or_init(|| std::env::args().any(|a| a == "--quick"))
}

fn run_one(c: &Criterion, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: c.sample_size,
        measurement_time: c.measurement_time,
        warm_up_time: c.warm_up_time,
    };
    if quick_mode() {
        b.sample_size = b.sample_size.clamp(2, 5);
        b.measurement_time = b.measurement_time.min(Duration::from_millis(250));
        b.warm_up_time = b.warm_up_time.min(Duration::from_millis(50));
    }
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("{id:<56} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    eprintln!(
        "{id:<56} {:>12} [{} .. {}]",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi)
    );
    RESULTS.lock().expect("results poisoned").push(Recorded {
        id: id.to_string(),
        median_ns: median.as_nanos() as f64,
        low_ns: lo.as_nanos() as f64,
        high_ns: hi.as_nanos() as f64,
    });
}

/// Minimal JSON string escaping (bench ids are plain ASCII, but be
/// correct anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Write the collected results as JSON to the `BENCH_JSON` path, if the
/// variable is set. Called by [`criterion_main!`]'s generated `main`
/// after every group ran; a no-op otherwise.
pub fn finalize() {
    let Some(path) = std::env::var_os("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("results poisoned");
    let mut doc = String::from("{\n");
    doc.push_str(&format!("  \"quick\": {},\n", quick_mode()));
    doc.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"low_ns\": {:.1}, \"high_ns\": {:.1}}}{}\n",
            json_escape(&r.id),
            r.median_ns,
            r.low_ns,
            r.high_ns,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ]\n}\n");
    match std::fs::write(&path, doc) {
        Ok(()) => eprintln!("\nwrote {} benchmark(s) to {:?}", results.len(), path),
        Err(e) => eprintln!("\nfailed to write BENCH_JSON {path:?}: {e}"),
    }
}

/// Declare a group of benchmark functions, optionally with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `main` running each group (used with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; only
            // `--quick` applies here (read lazily by the runner).
            $($group();)+
            $crate::finalize();
        }
    };
}
